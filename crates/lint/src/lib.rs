//! # massf-lint
//!
//! Preflight static diagnostics for the MaSSF reproduction: the compiler
//! front-end of the emulation pipeline.
//!
//! The paper's central observation is that bad partitioner inputs —
//! traffic-blind weights, near-zero-latency cut edges, injection points
//! whose demand the topology cannot carry — silently produce 2–3× load
//! imbalance that only shows up *after* an expensive emulation run. This
//! crate rejects or flags such inputs up front: every check is a *pass*
//! with a stable code (`MC001`…), a severity ([`Severity`]), and a source
//! location ([`Location`]), collected into a [`Diagnostics`] report that
//! renders both human-readable and byte-deterministic JSON
//! ([`render::human`], [`render::json`]).
//!
//! Entry points:
//!
//! * [`lint_scenario`] — run every pass over a full scenario description
//!   ([`LintInput`]: network + optional engines / traffic spec / flow
//!   schedule / predictions);
//! * [`lint_network`] — the structural subset for a bare topology;
//! * [`lint_partition`] — a topology plus a partition request;
//! * [`lint_graph`] — CSR invariants of an already-built partitioner
//!   input graph (the former `massf-graph::validate` checks as passes).
//!
//! The `massf check` CLI subcommand wraps [`lint_scenario`]; the
//! `partition`/`run`/`replay` subcommands call it as a preflight and
//! refuse to proceed past any Error-level diagnostic.
//!
//! ```
//! use massf_lint::{lint_network, Severity};
//! use massf_topology::Network;
//!
//! let mut net = Network::new();
//! let r = net.add_router("r", 0);
//! let h = net.add_host("h", 0);
//! net.add_link(r, h, 100.0, 50);
//! net.add_host("lonely", 0); // no link: disconnected
//! let diags = lint_network(&net);
//! assert!(diags.has_errors());
//! assert!(diags.iter().any(|d| d.code.as_str() == "MC001"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod passes;
pub mod render;

pub use artifact::{lint_artifacts, lint_trace, ArtifactInput};

use massf_topology::{Network, NodeId};
use massf_traffic::spec::TrafficKind;
use massf_traffic::{FlowSpec, PredictedFlow};
use std::collections::BTreeMap;

/// How serious a diagnostic is.
///
/// Ordered `Note < Warn < Error` so `max()` over a report gives the
/// overall outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a preflight.
    Note,
    /// Suspicious input that degrades partition quality; fails only under
    /// `--deny-warnings`.
    Warn,
    /// Malformed or degenerate input; the pipeline refuses to proceed.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers (`error`, `warning`, `note`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes, one per pass. Codes are append-only: a code is
/// never renumbered or reused once shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Network connectivity (components).
    Mc001,
    /// CSR graph invariants of the partitioner input.
    Mc002,
    /// Near-zero-latency router-router links (lookahead hazard when cut).
    Mc003,
    /// Injection point predicted demand exceeds access-link capacity.
    Mc004,
    /// Injection point unreachable from every other injection point.
    Mc005,
    /// NaN / negative / overflow-prone weights before i64 quantization.
    Mc006,
    /// Infeasible partition request (engines, balance tolerance).
    Mc007,
    /// Empty or all-zero PROFILE phase constraints.
    Mc008,
    /// Flow endpoints outside the network or of the wrong kind.
    Mc009,
    /// Background-traffic spec does not fit the topology.
    Mc010,
    /// Parallel links between one node pair.
    Mc011,
    /// Degree anomalies (isolated nodes, multihomed hosts).
    Mc012,
    /// Partition-shape audit of a concrete partitioning (contiguity,
    /// empty/singleton parts, cut-latency floor).
    Mc013,
    /// Asymmetric A→B vs. B→A shortest-path latencies in built routing
    /// tables.
    Mc014,
    /// Equal-cost multi-path ambiguity: routes whose next-hop choice rests
    /// on the deterministic tie-break, not on cost.
    Mc015,
    /// Trace-file lint (header/version, monotonic timestamps, horizon vs.
    /// declared duration, degenerate schedules).
    Mc016,
    /// Heterogeneous engine-capacity feasibility (MC007 generalized to
    /// capacity vectors).
    Mc017,
    /// Cross-AS aggregate lookahead: an AS reachable only through
    /// low-latency links (the aggregate form of MC003).
    Mc018,
    /// PLACE-predicted vs. NetFlow-measured per-engine load drift.
    Mc019,
    /// Measured per-engine load drift across emulation epochs.
    Mc020,
}

impl Code {
    /// Every code, in catalog order.
    pub const ALL: [Code; 20] = [
        Code::Mc001,
        Code::Mc002,
        Code::Mc003,
        Code::Mc004,
        Code::Mc005,
        Code::Mc006,
        Code::Mc007,
        Code::Mc008,
        Code::Mc009,
        Code::Mc010,
        Code::Mc011,
        Code::Mc012,
        Code::Mc013,
        Code::Mc014,
        Code::Mc015,
        Code::Mc016,
        Code::Mc017,
        Code::Mc018,
        Code::Mc019,
        Code::Mc020,
    ];

    /// The stable `MCnnn` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Mc001 => "MC001",
            Code::Mc002 => "MC002",
            Code::Mc003 => "MC003",
            Code::Mc004 => "MC004",
            Code::Mc005 => "MC005",
            Code::Mc006 => "MC006",
            Code::Mc007 => "MC007",
            Code::Mc008 => "MC008",
            Code::Mc009 => "MC009",
            Code::Mc010 => "MC010",
            Code::Mc011 => "MC011",
            Code::Mc012 => "MC012",
            Code::Mc013 => "MC013",
            Code::Mc014 => "MC014",
            Code::Mc015 => "MC015",
            Code::Mc016 => "MC016",
            Code::Mc017 => "MC017",
            Code::Mc018 => "MC018",
            Code::Mc019 => "MC019",
            Code::Mc020 => "MC020",
        }
    }

    /// Short kebab-case pass name.
    pub fn name(self) -> &'static str {
        match self {
            Code::Mc001 => "connectivity",
            Code::Mc002 => "csr-invariants",
            Code::Mc003 => "lookahead-hazard",
            Code::Mc004 => "oversubscribed-injection",
            Code::Mc005 => "unreachable-injection",
            Code::Mc006 => "weight-sanity",
            Code::Mc007 => "partition-feasibility",
            Code::Mc008 => "degenerate-phases",
            Code::Mc009 => "foreign-endpoints",
            Code::Mc010 => "spec-topology-fit",
            Code::Mc011 => "parallel-links",
            Code::Mc012 => "degree-anomalies",
            Code::Mc013 => "partition-shape",
            Code::Mc014 => "routing-asymmetry",
            Code::Mc015 => "ecmp-ambiguity",
            Code::Mc016 => "trace-lint",
            Code::Mc017 => "capacity-feasibility",
            Code::Mc018 => "cross-as-lookahead",
            Code::Mc019 => "predicted-load-drift",
            Code::Mc020 => "measured-load-drift",
        }
    }

    /// One-line description for the pass catalog.
    pub fn summary(self) -> &'static str {
        match self {
            Code::Mc001 => "the network must be one connected component",
            Code::Mc002 => "the partitioner input graph must satisfy all CSR invariants",
            Code::Mc003 => {
                "router-router links with near-zero latency destroy conservative lookahead when cut"
            }
            Code::Mc004 => {
                "an injection point's predicted demand must fit its access-link capacity"
            }
            Code::Mc005 => "every injection point must reach at least one other injection point",
            Code::Mc006 => "weights must be finite, non-negative, and safe to quantize to i64",
            Code::Mc007 => "the partition request must be satisfiable (engines, balance tolerance)",
            Code::Mc008 => "PROFILE phase detection needs non-empty, non-zero load buckets",
            Code::Mc009 => "flow endpoints must be in-range hosts, not routers or self-loops",
            Code::Mc010 => "the background-traffic spec must fit the topology's host count",
            Code::Mc011 => "parallel links between one pair merge in the partitioner graph",
            Code::Mc012 => "isolated nodes and multihomed hosts are load-model anomalies",
            Code::Mc013 => {
                "a concrete partition must have contiguous, non-empty parts and a safe cut-latency floor"
            }
            Code::Mc014 => "shortest-path latency must agree in both directions over symmetric links",
            Code::Mc015 => {
                "equal-cost next hops make the route a tie-break artifact, not a cost decision"
            }
            Code::Mc016 => {
                "a trace file must parse, stay monotonic, and fit its declared duration"
            }
            Code::Mc017 => {
                "a heterogeneous engine-capacity vector must be valid and satisfiable"
            }
            Code::Mc018 => {
                "an AS reachable only through low-latency links collapses lookahead when isolated"
            }
            Code::Mc019 => {
                "the PLACE-predicted per-engine load must track what NetFlow measured"
            }
            Code::Mc020 => {
                "measured per-engine load must stay stable across epochs, or remapping is due"
            }
        }
    }

    /// True for codes reserved in the catalog but not yet backed by a
    /// pass. Every code is currently implemented (MC019/MC020 landed with
    /// the online-rebalancing work); the method stays so future appends
    /// can reserve again.
    pub fn is_reserved(self) -> bool {
        false
    }

    /// The worst severity this pass can emit, as reported by the
    /// `massf check --list-passes` catalog. Append-only like the codes
    /// themselves: a pass may gain milder findings, but its worst
    /// severity is part of the stable catalog contract.
    pub fn worst_severity(self) -> Severity {
        match self {
            Code::Mc003 | Code::Mc004 | Code::Mc008 | Code::Mc011 | Code::Mc018 => Severity::Warn,
            Code::Mc015 => Severity::Note,
            _ => Severity::Error,
        }
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The network as a whole.
    Network,
    /// A named scenario/request field (e.g. `engines`, `traffic`).
    Field(&'static str),
    /// A node, by id and name.
    Node {
        /// Dense node id.
        id: NodeId,
        /// Node name from the description file.
        name: String,
    },
    /// A link, by id and endpoints.
    Link {
        /// Dense link id.
        id: u32,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A flow (concrete or predicted), by index in its schedule.
    Flow(usize),
    /// A partition part (engine index) in a concrete partitioning.
    Part(usize),
    /// A routed source-destination pair.
    Route {
        /// Route source node.
        src: NodeId,
        /// Route destination node.
        dst: NodeId,
    },
}

impl Location {
    /// Deterministic ordering key: kind rank, then numeric index.
    fn sort_key(&self) -> (u8, u64) {
        match self {
            Location::Network => (0, 0),
            Location::Field(_) => (1, 0),
            Location::Node { id, .. } => (2, *id as u64),
            Location::Link { id, .. } => (3, *id as u64),
            Location::Flow(i) => (4, *i as u64),
            Location::Part(p) => (5, *p as u64),
            Location::Route { src, dst } => (6, ((*src as u64) << 32) | *dst as u64),
        }
    }

    /// Compact rendering shared by both renderers.
    pub fn render(&self) -> String {
        match self {
            Location::Network => "network".to_string(),
            Location::Field(f) => format!("field {f}"),
            Location::Node { id, name } => format!("node {id} ({name})"),
            Location::Link { id, a, b } => format!("link {id} ({a}-{b})"),
            Location::Flow(i) => format!("flow {i}"),
            Location::Part(p) => format!("part {p}"),
            Location::Route { src, dst } => format!("route {src}->{dst}"),
        }
    }
}

/// One finding: a pass code, a severity, a location, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// The pass that produced this finding.
    pub code: Code,
    /// How serious it is.
    pub severity: Severity,
    /// What it points at.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-code cap on emitted diagnostics; further findings of the same code
/// are counted but not stored, keeping reports bounded on pathological
/// inputs (e.g. a trace with thousands of foreign endpoints).
pub const MAX_DIAGS_PER_CODE: usize = 25;

/// A collection of diagnostics with deterministic ordering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diag>,
    suppressed: BTreeMap<Code, usize>,
    passes_run: usize,
}

impl Diagnostics {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding (or counts it as suppressed past the per-code cap).
    pub fn push(&mut self, code: Code, severity: Severity, location: Location, message: String) {
        let emitted = self.diags.iter().filter(|d| d.code == code).count();
        if emitted >= MAX_DIAGS_PER_CODE {
            *self.suppressed.entry(code).or_insert(0) += 1;
            return;
        }
        self.diags.push(Diag {
            code,
            severity,
            location,
            message,
        });
    }

    /// The findings, in report order (errors first, then by code, location,
    /// message). Only meaningful after [`Diagnostics::finish`]; the lint
    /// entry points return finished reports.
    pub fn iter(&self) -> std::slice::Iter<'_, Diag> {
        self.diags.iter()
    }

    /// Number of stored findings (suppressed ones excluded).
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when no findings were stored.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// `(code, count)` of findings suppressed past the per-code cap.
    pub fn suppressed(&self) -> impl Iterator<Item = (Code, usize)> + '_ {
        self.suppressed.iter().map(|(&c, &n)| (c, n))
    }

    /// How many passes ran to produce this report.
    pub fn passes_run(&self) -> usize {
        self.passes_run
    }

    /// Findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// True when any Error-level finding is present.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Promotes every Warn to Error (the `--deny-warnings` contract).
    pub fn deny_warnings(&mut self) {
        for d in &mut self.diags {
            if d.severity == Severity::Warn {
                d.severity = Severity::Error;
            }
        }
    }

    /// Merges another report into this one: findings concatenate (subject
    /// to this report's per-code caps), suppression counts add, and
    /// `passes_run` accumulates. Call [`Diagnostics::finish`] afterwards
    /// to restore report order. This is how the CLI folds an
    /// artifact-audit report into a request-preflight report.
    pub fn merge(&mut self, other: Diagnostics) {
        for d in other.diags {
            self.push(d.code, d.severity, d.location, d.message);
        }
        for (code, n) in other.suppressed {
            *self.suppressed.entry(code).or_insert(0) += n;
        }
        self.passes_run += other.passes_run;
    }

    /// Sorts into the deterministic report order: severity (errors first),
    /// then code, location, message.
    pub fn finish(&mut self) {
        self.diags.sort_by(|x, y| {
            (
                std::cmp::Reverse(x.severity),
                x.code,
                x.location.sort_key(),
                &x.message,
            )
                .cmp(&(
                    std::cmp::Reverse(y.severity),
                    y.code,
                    y.location.sort_key(),
                    &y.message,
                ))
        });
    }

    /// One-line outcome summary (shared tail of the human report).
    pub fn summary_line(&self) -> String {
        format!(
            "check: {} error(s), {} warning(s), {} note(s) — {} passes run",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note),
            self.passes_run
        )
    }
}

/// Everything the linter may inspect. Optional parts simply skip the
/// passes that need them, so one input type serves bare-topology checks
/// and full scenario preflights alike.
#[derive(Debug, Clone, Copy)]
pub struct LintInput<'a> {
    /// The emulated network.
    pub net: &'a Network,
    /// Requested engine count (partition request), if any.
    pub engines: Option<usize>,
    /// Partitioner imbalance tolerance used for feasibility checks.
    pub ubfactor: f64,
    /// PLACE-style predicted flows, if any.
    pub predicted: &'a [PredictedFlow],
    /// The concrete flow schedule, if any.
    pub flows: &'a [FlowSpec],
    /// The parsed background-traffic spec, if any.
    pub traffic: Option<&'a TrafficKind>,
}

impl<'a> LintInput<'a> {
    /// A bare-topology input: no partition request, no traffic knowledge.
    pub fn network(net: &'a Network) -> Self {
        Self {
            net,
            engines: None,
            ubfactor: DEFAULT_UBFACTOR,
            predicted: &[],
            flows: &[],
            traffic: None,
        }
    }

    /// Builder: sets the partition request.
    pub fn with_engines(mut self, engines: usize) -> Self {
        self.engines = Some(engines);
        self
    }

    /// Builder: sets the imbalance tolerance for feasibility checks.
    pub fn with_ubfactor(mut self, ub: f64) -> Self {
        self.ubfactor = ub;
        self
    }
}

/// Default imbalance tolerance assumed when the caller does not supply
/// one; matches `MapperConfig::new`'s default.
pub const DEFAULT_UBFACTOR: f64 = 1.25;

/// Runs every registered pass over `input` and returns the finished,
/// deterministically ordered report.
pub fn lint_scenario(input: &LintInput<'_>) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for pass in passes::registry() {
        (pass.run)(input, &mut diags);
        diags.passes_run += 1;
    }
    diags.finish();
    diags
}

/// Lints a bare topology (the structural subset of the catalog).
pub fn lint_network(net: &Network) -> Diagnostics {
    lint_scenario(&LintInput::network(net))
}

/// Lints a topology plus a partition request (`engines` parts at
/// imbalance tolerance `ubfactor`).
pub fn lint_partition(net: &Network, engines: usize, ubfactor: f64) -> Diagnostics {
    lint_scenario(
        &LintInput::network(net)
            .with_engines(engines)
            .with_ubfactor(ubfactor),
    )
}

/// Checks the CSR invariants of an already-built partitioner input graph,
/// reporting violations as `MC002` diagnostics — `massf-graph`'s
/// `validate` absorbed into the pass framework.
pub fn lint_graph(g: &massf_graph::CsrGraph) -> Diagnostics {
    let mut diags = Diagnostics::new();
    passes::csr_invariants_of(g, &mut diags);
    diags.passes_run = 1;
    diags.finish();
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_net() -> Network {
        let mut net = Network::new();
        let h0 = net.add_host("h0", 0);
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 1);
        let h1 = net.add_host("h1", 1);
        net.add_link(h0, r0, 100.0, 100);
        net.add_link(r0, r1, 1000.0, 5000);
        net.add_link(r1, h1, 100.0, 100);
        net
    }

    #[test]
    fn clean_network_is_clean() {
        let d = lint_network(&line_net());
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(d.count(Severity::Warn), 0, "{d:?}");
        assert_eq!(d.passes_run(), passes::registry().len());
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Note);
        assert_eq!(Severity::Warn.label(), "warning");
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut dedup = strs.clone();
        dedup.dedup();
        assert_eq!(strs, dedup);
        assert_eq!(strs[0], "MC001");
        assert_eq!(*strs.last().unwrap(), "MC020");
        for c in Code::ALL {
            assert!(!c.name().is_empty());
            assert!(!c.summary().is_empty());
        }
        let reserved: Vec<&str> = Code::ALL
            .iter()
            .filter(|c| c.is_reserved())
            .map(|c| c.as_str())
            .collect();
        assert!(reserved.is_empty(), "every cataloged code has a pass");
    }

    #[test]
    fn merge_accumulates_findings_and_passes() {
        let mut a = Diagnostics::new();
        a.push(Code::Mc003, Severity::Warn, Location::Network, "w".into());
        a.passes_run = 12;
        let mut b = Diagnostics::new();
        b.push(Code::Mc013, Severity::Error, Location::Part(1), "e".into());
        b.push(
            Code::Mc015,
            Severity::Note,
            Location::Route { src: 0, dst: 3 },
            "n".into(),
        );
        b.passes_run = 6;
        a.merge(b);
        a.finish();
        assert_eq!(a.len(), 3);
        assert_eq!(a.passes_run(), 18);
        assert_eq!(a.iter().next().unwrap().code, Code::Mc013, "errors first");
    }

    #[test]
    fn per_code_cap_suppresses() {
        let mut d = Diagnostics::new();
        for i in 0..MAX_DIAGS_PER_CODE + 7 {
            d.push(
                Code::Mc009,
                Severity::Warn,
                Location::Flow(i),
                format!("finding {i}"),
            );
        }
        assert_eq!(d.len(), MAX_DIAGS_PER_CODE);
        assert_eq!(d.suppressed().collect::<Vec<_>>(), vec![(Code::Mc009, 7)]);
    }

    #[test]
    fn deny_warnings_promotes() {
        let mut d = Diagnostics::new();
        d.push(Code::Mc003, Severity::Warn, Location::Network, "w".into());
        d.push(Code::Mc001, Severity::Note, Location::Network, "n".into());
        assert!(!d.has_errors());
        d.deny_warnings();
        assert!(d.has_errors());
        assert_eq!(d.count(Severity::Note), 1, "notes stay notes");
    }

    #[test]
    fn finish_orders_errors_first_then_code_and_location() {
        let mut d = Diagnostics::new();
        d.push(Code::Mc012, Severity::Note, Location::Flow(1), "z".into());
        d.push(
            Code::Mc003,
            Severity::Warn,
            Location::Link { id: 2, a: 0, b: 1 },
            "w".into(),
        );
        d.push(Code::Mc001, Severity::Error, Location::Network, "e".into());
        d.push(
            Code::Mc005,
            Severity::Error,
            Location::Node {
                id: 4,
                name: "h".into(),
            },
            "e2".into(),
        );
        d.finish();
        let order: Vec<(&str, &str)> = d
            .iter()
            .map(|x| (x.code.as_str(), x.severity.label()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("MC001", "error"),
                ("MC005", "error"),
                ("MC003", "warning"),
                ("MC012", "note"),
            ]
        );
    }

    #[test]
    fn lint_graph_flags_corrupt_csr() {
        // A valid graph first.
        let mut b = massf_graph::GraphBuilder::new(1);
        b.add_unit_vertices(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert!(!lint_graph(&g).has_errors());
    }
}
