//! Artifact-aware lint passes: the post-pipeline half of the catalog.
//!
//! The request passes ([`crate::passes`], MC001–MC012) judge what the user
//! *asked for*; the passes here judge what the pipeline *produced* —
//! concrete partitionings, built routing tables, and recorded trace files.
//! These are the properties the paper's quality story rests on: cut
//! latency is the conservative-PDES lookahead, part balance is the load
//! balance, and a recorded trace is only replayable if it is internally
//! consistent.
//!
//! Codes MC013–MC020 live here; MC019/MC020 are the load-drift passes
//! (PLACE-predicted vs. NetFlow-measured per-engine load, and measured
//! load across epochs) that trigger the incremental rebalancer
//! (DESIGN.md §15). Entry points:
//!
//! * [`lint_artifacts`] — run every artifact pass over an
//!   [`ArtifactInput`]; passes whose artifact is absent still count as run
//!   (mirroring the request registry), so `passes_run` is deterministic.
//! * [`lint_trace`] — just the MC016 trace checks over a parse result,
//!   for callers with no network in hand.
//!
//! The CLI folds these reports into the request preflight with
//! [`crate::Diagnostics::merge`]; `partition`/`run`/`record`/`replay`
//! refuse past any Error, exactly like the preflight contract.

use crate::passes::{node_loc, LOOKAHEAD_HAZARD_US};
use crate::{Code, Diagnostics, Location, Severity, MAX_DIAGS_PER_CODE};
use massf_mapping::weights;
use massf_partition::quality;
use massf_partition::Partitioning;
use massf_routing::probes;
use massf_routing::RoutingTables;
use massf_topology::Network;
use massf_traffic::tracefile::{Trace, TraceError};

/// Everything the artifact audit may inspect. Optional parts simply skip
/// the passes that need them, so one input type serves a post-`partition`
/// audit (partition only), a post-`run` audit (partition + tables), and a
/// trace-file check alike.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactInput<'a> {
    /// The emulated network the artifacts were produced from.
    pub net: &'a Network,
    /// Requested engine count, if known (validates capacity vectors).
    pub engines: Option<usize>,
    /// Partitioner imbalance tolerance used for feasibility checks.
    pub ubfactor: f64,
    /// Heterogeneous per-engine capacity vector, if one was requested.
    pub engine_capacities: Option<&'a [f64]>,
    /// A concrete partitioning to audit (MC013).
    pub partition: Option<&'a Partitioning>,
    /// Built routing tables to probe (MC014, MC015).
    pub tables: Option<&'a RoutingTables>,
    /// A parsed trace file — or its parse failure — to lint (MC016).
    pub trace: Option<&'a Result<Trace, TraceError>>,
    /// PLACE-predicted per-engine loads, for the drift comparison
    /// against measured loads (MC019).
    pub predicted_engine_loads: Option<&'a [f64]>,
    /// Measured per-engine loads, one vector per emulation epoch
    /// (MC019 compares their total against the prediction; MC020 checks
    /// epoch-over-epoch stability).
    pub epoch_engine_loads: Option<&'a [Vec<u64>]>,
}

impl<'a> ArtifactInput<'a> {
    /// A bare input: network only, every artifact absent.
    pub fn new(net: &'a Network) -> Self {
        Self {
            net,
            engines: None,
            ubfactor: crate::DEFAULT_UBFACTOR,
            engine_capacities: None,
            partition: None,
            tables: None,
            trace: None,
            predicted_engine_loads: None,
            epoch_engine_loads: None,
        }
    }

    /// Builder: sets the requested engine count.
    pub fn with_engines(mut self, engines: usize) -> Self {
        self.engines = Some(engines);
        self
    }

    /// Builder: sets the imbalance tolerance.
    pub fn with_ubfactor(mut self, ub: f64) -> Self {
        self.ubfactor = ub;
        self
    }

    /// Builder: sets the heterogeneous capacity vector.
    pub fn with_capacities(mut self, caps: &'a [f64]) -> Self {
        self.engine_capacities = Some(caps);
        self
    }

    /// Builder: sets the partitioning to audit.
    pub fn with_partition(mut self, p: &'a Partitioning) -> Self {
        self.partition = Some(p);
        self
    }

    /// Builder: sets the routing tables to probe.
    pub fn with_tables(mut self, t: &'a RoutingTables) -> Self {
        self.tables = Some(t);
        self
    }

    /// Builder: sets the trace parse result to lint.
    pub fn with_trace(mut self, t: &'a Result<Trace, TraceError>) -> Self {
        self.trace = Some(t);
        self
    }

    /// Builder: sets the PLACE-predicted per-engine loads (MC019).
    pub fn with_predicted_loads(mut self, loads: &'a [f64]) -> Self {
        self.predicted_engine_loads = Some(loads);
        self
    }

    /// Builder: sets the per-epoch measured per-engine loads
    /// (MC019/MC020).
    pub fn with_epoch_loads(mut self, epochs: &'a [Vec<u64>]) -> Self {
        self.epoch_engine_loads = Some(epochs);
        self
    }
}

/// One artifact pass: a stable code and its runner.
pub struct ArtifactPass {
    /// The code this pass emits.
    pub code: Code,
    /// The pass body.
    pub run: fn(&ArtifactInput<'_>, &mut Diagnostics),
}

static ARTIFACT_REGISTRY: [ArtifactPass; 8] = [
    ArtifactPass {
        code: Code::Mc013,
        run: partition_shape,
    },
    ArtifactPass {
        code: Code::Mc014,
        run: routing_asymmetry,
    },
    ArtifactPass {
        code: Code::Mc015,
        run: ecmp_ambiguity,
    },
    ArtifactPass {
        code: Code::Mc016,
        run: trace_lint,
    },
    ArtifactPass {
        code: Code::Mc017,
        run: capacity_feasibility,
    },
    ArtifactPass {
        code: Code::Mc018,
        run: cross_as_lookahead,
    },
    ArtifactPass {
        code: Code::Mc019,
        run: predicted_load_drift,
    },
    ArtifactPass {
        code: Code::Mc020,
        run: measured_load_drift,
    },
];

/// The artifact passes, in catalog order (MC013–MC020).
pub fn artifact_registry() -> &'static [ArtifactPass] {
    &ARTIFACT_REGISTRY
}

/// Runs every artifact pass over `input` and returns the finished,
/// deterministically ordered report.
pub fn lint_artifacts(input: &ArtifactInput<'_>) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for pass in artifact_registry() {
        (pass.run)(input, &mut diags);
        diags.passes_run += 1;
    }
    diags.finish();
    diags
}

/// Lints a trace parse result alone (the MC016 checks) — the entry point
/// for `massf check <trace.txt>` when no network is supplied.
pub fn lint_trace(parsed: &Result<Trace, TraceError>) -> Diagnostics {
    let mut diags = Diagnostics::new();
    trace_checks(parsed, &mut diags);
    diags.passes_run = 1;
    diags.finish();
    diags
}

/// MC013 — partition-shape audit of a concrete partitioning: coverage,
/// label range, empty/singleton parts, per-part contiguity, and the
/// cut-latency floor that becomes the conservative lookahead.
fn partition_shape(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(p) = input.partition else {
        return;
    };
    let net = input.net;
    if p.part.len() != net.node_count() || p.nparts == 0 {
        diags.push(
            Code::Mc013,
            Severity::Error,
            Location::Network,
            format!(
                "partitioning labels {} vertices into {} parts but the network has {} nodes; \
                 the artifact does not belong to this topology",
                p.part.len(),
                p.nparts,
                net.node_count()
            ),
        );
        return;
    }
    if let Some((v, &label)) = p
        .part
        .iter()
        .enumerate()
        .find(|(_, &label)| label as usize >= p.nparts)
    {
        diags.push(
            Code::Mc013,
            Severity::Error,
            node_loc(net, v as massf_topology::NodeId),
            format!(
                "part label {label} is out of range for a {}-way partitioning",
                p.nparts
            ),
        );
        return;
    }
    let mut sizes = vec![0usize; p.nparts];
    for &label in &p.part {
        sizes[label as usize] += 1;
    }
    let g = net.to_unit_graph();
    let components = quality::part_component_counts(&g, &p.part, p.nparts);
    for part in 0..p.nparts {
        if sizes[part] == 0 {
            diags.push(
                Code::Mc013,
                Severity::Error,
                Location::Part(part),
                format!("engine {part} owns no nodes; the partition wastes an engine"),
            );
        } else if sizes[part] == 1 {
            diags.push(
                Code::Mc013,
                Severity::Note,
                Location::Part(part),
                format!(
                    "engine {part} owns a single node; per-engine overhead dominates its useful work"
                ),
            );
        }
        if components[part] > 1 {
            // Note, not Warn: k-way partitioners (METIS included) do not
            // guarantee contiguity, and TOP fragments on the shipped
            // Campus/TeraGrid topologies. It costs cut latency but is an
            // expected partitioner property, not a pipeline defect.
            diags.push(
                Code::Mc013,
                Severity::Note,
                Location::Part(part),
                format!(
                    "engine {part}'s region splits into {} disconnected fragments; traffic \
                     between its own fragments crosses other engines and pays cut latency",
                    components[part]
                ),
            );
        }
    }
    // Cut-latency floor: the minimum-latency cut link bounds the sync
    // window for the whole run (the aggregate consequence of MC003).
    let mut floor: Option<(usize, u64)> = None;
    for (i, l) in net.links().iter().enumerate() {
        if p.part[l.a as usize] != p.part[l.b as usize]
            && floor.is_none_or(|(_, best)| l.latency_us < best)
        {
            floor = Some((i, l.latency_us));
        }
    }
    if let Some((i, latency)) = floor {
        if latency < LOOKAHEAD_HAZARD_US {
            let l = &net.links()[i];
            diags.push(
                Code::Mc013,
                Severity::Warn,
                Location::Link {
                    id: i as u32,
                    a: l.a,
                    b: l.b,
                },
                format!(
                    "the partition's cut-latency floor is {latency} µs (below {LOOKAHEAD_HAZARD_US} µs): \
                     this link caps the conservative sync window for every engine"
                ),
            );
        }
    }
}

/// MC014 — A→B vs. B→A shortest-path latency divergence. Links are
/// bidirectional with one latency, so intact tables are symmetric by
/// construction; any disagreement means corrupted tables and an unsound
/// lookahead bound.
fn routing_asymmetry(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(tables) = input.tables else {
        return;
    };
    let (pairs, total) = probes::asymmetric_latencies(tables, MAX_DIAGS_PER_CODE - 1);
    let fmt_us = |us: u64| {
        if us == u64::MAX {
            "unreachable".to_string()
        } else {
            format!("{us} µs")
        }
    };
    for pair in &pairs {
        diags.push(
            Code::Mc014,
            Severity::Error,
            Location::Route {
                src: pair.a,
                dst: pair.b,
            },
            format!(
                "shortest-path latency {} forward but {} back; symmetric links cannot \
                 produce asymmetric routes",
                fmt_us(pair.ab_us),
                fmt_us(pair.ba_us)
            ),
        );
    }
    if total > pairs.len() {
        diags.push(
            Code::Mc014,
            Severity::Error,
            Location::Network,
            format!(
                "{total} node pairs route asymmetrically in total; first {} shown",
                pairs.len()
            ),
        );
    }
}

/// MC015 — equal-cost multi-path ambiguity: routes whose first hop is
/// chosen by the deterministic tie-break, not by cost. Renumbering the
/// topology re-routes this traffic, shifting link load between engines.
fn ecmp_ambiguity(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(tables) = input.tables else {
        return;
    };
    let (sites, total) = probes::ecmp_sites(input.net, tables, MAX_DIAGS_PER_CODE - 1);
    for site in &sites {
        let hops: Vec<String> = site.next_hops.iter().map(|h| h.to_string()).collect();
        diags.push(
            Code::Mc015,
            Severity::Note,
            Location::Route {
                src: site.src,
                dst: site.dst,
            },
            format!(
                "{} equal-cost first hops (nodes {}); the chosen route is a node-id tie-break",
                site.next_hops.len(),
                hops.join(", ")
            ),
        );
    }
    if total > sites.len() {
        diags.push(
            Code::Mc015,
            Severity::Note,
            Location::Network,
            format!(
                "{total} routes have equal-cost alternatives in total; first {} shown",
                sites.len()
            ),
        );
    }
}

/// MC016 — trace-file lint: parse/version failures, empty schedules,
/// non-monotonic timestamps, and flows outside the declared duration.
fn trace_lint(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(parsed) = input.trace else {
        return;
    };
    trace_checks(parsed, diags);
}

fn trace_checks(parsed: &Result<Trace, TraceError>, diags: &mut Diagnostics) {
    let loc = Location::Field("trace");
    let trace = match parsed {
        Err(e) => {
            diags.push(
                Code::Mc016,
                Severity::Error,
                loc,
                format!("trace rejected: {e}"),
            );
            return;
        }
        Ok(t) => t,
    };
    if trace.flows.is_empty() {
        diags.push(
            Code::Mc016,
            Severity::Error,
            loc,
            "trace contains no flows".into(),
        );
        return;
    }
    // Recorded traces are written in schedule order; report the first
    // regression only — one out-of-order splice produces one finding, not
    // one per subsequent flow.
    if let Some(i) =
        (1..trace.flows.len()).find(|&i| trace.flows[i].start_us < trace.flows[i - 1].start_us)
    {
        diags.push(
            Code::Mc016,
            Severity::Note,
            Location::Flow(i),
            format!(
                "flow starts at {} µs, before the preceding flow's {} µs; recorded traces \
                 are time-ordered",
                trace.flows[i].start_us,
                trace.flows[i - 1].start_us
            ),
        );
    }
    if let Some(duration) = trace.declared_duration_us {
        let mut tail_overrun: Option<u64> = None;
        for (i, f) in trace.flows.iter().enumerate() {
            if f.start_us >= duration {
                diags.push(
                    Code::Mc016,
                    Severity::Warn,
                    Location::Flow(i),
                    format!(
                        "flow starts at {} µs, at or past the declared duration {duration} µs; \
                         it can never run",
                        f.start_us
                    ),
                );
            } else {
                let end = f.start_us.saturating_add(
                    f.packets
                        .saturating_sub(1)
                        .saturating_mul(f.packet_interval_us),
                );
                if end > duration {
                    tail_overrun = Some(tail_overrun.map_or(end, |m| m.max(end)));
                }
            }
        }
        if let Some(horizon) = tail_overrun {
            diags.push(
                Code::Mc016,
                Severity::Note,
                loc,
                format!(
                    "schedule horizon {horizon} µs exceeds the declared duration {duration} µs; \
                     the emulation truncates the tail"
                ),
            );
        }
    }
}

/// MC017 — heterogeneous engine-capacity feasibility: MC007 generalized
/// to per-engine capacity vectors (`PartitionConfig::with_capacities`).
fn capacity_feasibility(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(caps) = input.engine_capacities else {
        return;
    };
    let loc = Location::Field("capacities");
    if let Some(engines) = input.engines {
        if caps.len() != engines {
            diags.push(
                Code::Mc017,
                Severity::Error,
                loc.clone(),
                format!(
                    "capacity vector has {} entries but {engines} engines are requested",
                    caps.len()
                ),
            );
            return;
        }
    }
    let mut invalid = false;
    for (i, &c) in caps.iter().enumerate() {
        if !c.is_finite() || c <= 0.0 {
            invalid = true;
            diags.push(
                Code::Mc017,
                Severity::Error,
                loc.clone(),
                format!("capacity entry {i} is {c}; entries must be positive and finite"),
            );
        }
    }
    if invalid || caps.is_empty() || input.net.node_count() == 0 {
        return;
    }
    let total: f64 = caps.iter().sum();
    let fractions: Vec<f64> = caps.iter().map(|c| c / total).collect();
    let g = weights::latency_graph(input.net);
    for inf in quality::infeasible_target_constraints(&g, &fractions, input.ubfactor) {
        diags.push(
            Code::Mc017,
            Severity::Warn,
            loc.clone(),
            format!(
                "balance constraint {}: heaviest vertex weight {} exceeds the largest \
                 target capacity {:.1} at tolerance {:.2}; no partition over this \
                 capacity vector can meet the balance target",
                inf.constraint, inf.max_vertex_weight, inf.capacity, input.ubfactor
            ),
        );
    }
}

/// MC018 — cross-AS aggregate lookahead: an AS whose every escape link is
/// below the lookahead-hazard threshold. MC003 flags individual fast
/// links; this is the aggregate form — any partition that puts such an AS
/// on its own engine gets a sync window capped by its fastest escape.
fn cross_as_lookahead(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let net = input.net;
    // max boundary-link latency per AS; absent key = no boundary links.
    let mut escape: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for l in net.links() {
        let (asa, asb) = (net.node(l.a).as_id, net.node(l.b).as_id);
        if asa != asb {
            for as_id in [asa, asb] {
                let e = escape.entry(as_id).or_insert(0);
                *e = (*e).max(l.latency_us);
            }
        }
    }
    for (as_id, max_latency) in escape {
        if max_latency < LOOKAHEAD_HAZARD_US {
            diags.push(
                Code::Mc018,
                Severity::Warn,
                Location::Network,
                format!(
                    "AS {as_id} reaches the rest of the network only through links under \
                     {LOOKAHEAD_HAZARD_US} µs (slowest escape {max_latency} µs); a partition \
                     isolating it collapses the sync window"
                ),
            );
        }
    }
}

/// Drift above this total-variation distance is worth a warning: a
/// quarter of the load sits on different engines than expected, the
/// regime where the paper measures 2–3× imbalance.
pub const DRIFT_WARN: f64 = 0.25;

/// Drift above this is a note — visible movement, not yet pathological.
/// Matches the incremental rebalancer's quiet-epoch threshold scale
/// (DESIGN.md §15).
pub const DRIFT_NOTE: f64 = 0.10;

fn drift_severity(drift: f64) -> Option<Severity> {
    if drift > DRIFT_WARN {
        Some(Severity::Warn)
    } else if drift > DRIFT_NOTE {
        Some(Severity::Note)
    } else {
        None
    }
}

/// MC019 — PLACE-predicted vs. NetFlow-measured per-engine load drift.
/// Large drift means the placement prediction mis-modeled the traffic:
/// the partition was optimized for loads that never materialized, and a
/// PROFILE (or online) remap is due.
fn predicted_load_drift(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let (Some(predicted), Some(epochs)) = (input.predicted_engine_loads, input.epoch_engine_loads)
    else {
        return;
    };
    let Some(first) = epochs.first() else {
        return;
    };
    if predicted.len() != first.len() {
        diags.push(
            Code::Mc019,
            Severity::Error,
            Location::Field("predicted_loads"),
            format!(
                "prediction covers {} engines but {} were measured; the artifacts \
                 do not belong to the same run",
                predicted.len(),
                first.len()
            ),
        );
        return;
    }
    // Whole-run measured load: the element-wise sum over epochs.
    let mut measured = vec![0.0f64; first.len()];
    for epoch in epochs {
        for (m, &l) in measured.iter_mut().zip(epoch) {
            *m += l as f64;
        }
    }
    if predicted.iter().sum::<f64>() <= 0.0 || measured.iter().sum::<f64>() <= 0.0 {
        return; // no prediction or an idle run: nothing to compare
    }
    let drift = massf_metrics::load_drift(predicted, &measured);
    if let Some(severity) = drift_severity(drift) {
        diags.push(
            Code::Mc019,
            severity,
            Location::Field("predicted_loads"),
            format!(
                "measured per-engine load drifted {:.0} % from the PLACE prediction \
                 (total-variation {drift:.3}); the partition was balanced for traffic \
                 that did not materialize",
                drift * 100.0
            ),
        );
    }
}

/// MC020 — measured per-engine load drift across epochs. Consecutive
/// epochs whose load shares move sharply mean no static partition fits
/// the whole run — the §6 regime where "dynamic remapping … is the only
/// solution", and the trigger condition of the incremental rebalancer.
fn measured_load_drift(input: &ArtifactInput<'_>, diags: &mut Diagnostics) {
    let Some(epochs) = input.epoch_engine_loads else {
        return;
    };
    for (i, pair) in epochs.windows(2).enumerate() {
        if pair[0].len() != pair[1].len() {
            diags.push(
                Code::Mc020,
                Severity::Error,
                Location::Field("epoch_loads"),
                format!(
                    "epoch {} measured {} engines but epoch {} measured {}; epoch \
                     vectors must agree",
                    i + 1,
                    pair[0].len(),
                    i + 2,
                    pair[1].len()
                ),
            );
            return;
        }
        let drift = massf_metrics::load_drift_u64(&pair[0], &pair[1]);
        if let Some(severity) = drift_severity(drift) {
            diags.push(
                Code::Mc020,
                severity,
                Location::Field("epoch_loads"),
                format!(
                    "{:.0} % of the measured load changed engines between epoch {} and \
                     epoch {} (total-variation {drift:.3}); traffic this dynamic wants \
                     online rebalancing (`--rebalance incremental`)",
                    drift * 100.0,
                    i + 1,
                    i + 2
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_traffic::tracefile;
    use massf_traffic::FlowSpec;

    /// h0-r0-r1-h1 line, 5 ms backbone.
    fn line_net() -> Network {
        let mut net = Network::new();
        let h0 = net.add_host("h0", 0);
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 1);
        let h1 = net.add_host("h1", 1);
        net.add_link(h0, r0, 100.0, 100);
        net.add_link(r0, r1, 1000.0, 5000);
        net.add_link(r1, h1, 100.0, 100);
        net
    }

    fn flow(src: u32, dst: u32, start_us: u64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            start_us,
            packets: 10,
            bytes: 15_000,
            packet_interval_us: 100,
            window: None,
        }
    }

    #[test]
    fn clean_partition_audits_clean() {
        let net = line_net();
        let p = Partitioning {
            part: vec![0, 0, 1, 1],
            nparts: 2,
        };
        let input = ArtifactInput::new(&net).with_partition(&p);
        let d = lint_artifacts(&input);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(d.passes_run(), artifact_registry().len());
    }

    #[test]
    fn empty_part_is_an_error_and_singleton_a_note() {
        let net = line_net();
        let p = Partitioning {
            part: vec![0, 0, 0, 1],
            nparts: 3,
        };
        let d = lint_artifacts(&ArtifactInput::new(&net).with_partition(&p));
        assert!(d.has_errors());
        assert!(d.iter().any(|x| x.code == Code::Mc013
            && x.severity == Severity::Error
            && x.location == Location::Part(2)));
        assert!(d.iter().any(|x| x.code == Code::Mc013
            && x.severity == Severity::Note
            && x.location == Location::Part(1)));
    }

    #[test]
    fn fragmented_part_is_a_note() {
        let net = line_net();
        // Part 0 owns both ends of the line but not the middle.
        let p = Partitioning {
            part: vec![0, 1, 1, 0],
            nparts: 2,
        };
        let d = lint_artifacts(&ArtifactInput::new(&net).with_partition(&p));
        assert!(!d.has_errors(), "{d:?}");
        assert!(d.iter().any(|x| x.code == Code::Mc013
            && x.severity == Severity::Note
            && x.message.contains("2 disconnected fragments")));
    }

    #[test]
    fn low_latency_cut_floor_is_a_warning() {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 0);
        let h0 = net.add_host("h0", 0);
        let h1 = net.add_host("h1", 0);
        net.add_link(r0, r1, 1000.0, LOOKAHEAD_HAZARD_US - 10);
        net.add_link(h0, r0, 100.0, 100);
        net.add_link(h1, r1, 100.0, 100);
        let p = Partitioning {
            part: vec![0, 1, 0, 1],
            nparts: 2,
        };
        let d = lint_artifacts(&ArtifactInput::new(&net).with_partition(&p));
        assert!(d.iter().any(|x| x.code == Code::Mc013
            && x.severity == Severity::Warn
            && x.message.contains("cut-latency floor")));
    }

    #[test]
    fn foreign_partition_is_an_error() {
        let net = line_net();
        let p = Partitioning {
            part: vec![0, 1],
            nparts: 2,
        };
        let d = lint_artifacts(&ArtifactInput::new(&net).with_partition(&p));
        assert!(d.has_errors());
        assert!(d
            .iter()
            .any(|x| x.code == Code::Mc013 && x.message.contains("does not belong")));
    }

    #[test]
    fn intact_routing_tables_audit_clean_of_asymmetry() {
        let net = line_net();
        let tables = RoutingTables::build(&net);
        let d = lint_artifacts(&ArtifactInput::new(&net).with_tables(&tables));
        assert!(!d.iter().any(|x| x.code == Code::Mc014), "{d:?}");
    }

    #[test]
    fn ecmp_square_is_noted() {
        let mut net = Network::new();
        let r: Vec<_> = (0..4).map(|i| net.add_router(format!("r{i}"), 0)).collect();
        net.add_link(r[0], r[1], 1000.0, 100);
        net.add_link(r[1], r[2], 1000.0, 100);
        net.add_link(r[2], r[3], 1000.0, 100);
        net.add_link(r[3], r[0], 1000.0, 100);
        let tables = RoutingTables::build(&net);
        let d = lint_artifacts(&ArtifactInput::new(&net).with_tables(&tables));
        assert!(!d.has_errors(), "{d:?}");
        let notes: Vec<_> = d.iter().filter(|x| x.code == Code::Mc015).collect();
        assert_eq!(notes.len(), 4, "{notes:?}");
        assert!(notes[0].message.contains("equal-cost first hops"));
    }

    #[test]
    fn trace_parse_failure_and_empty_trace_are_errors() {
        let bad = tracefile::parse_trace("not a trace\n");
        let d = lint_trace(&bad);
        assert!(d.has_errors());
        assert!(d
            .iter()
            .any(|x| x.code == Code::Mc016 && x.message.contains("trace rejected")));

        let empty = tracefile::parse_trace(&tracefile::write(&[]));
        let d = lint_trace(&empty);
        assert!(d.has_errors());
        assert!(d
            .iter()
            .any(|x| x.message.contains("trace contains no flows")));
        assert_eq!(d.passes_run(), 1);
    }

    #[test]
    fn non_monotonic_trace_is_noted_once() {
        let flows = vec![flow(0, 3, 500), flow(3, 0, 100), flow(0, 3, 50)];
        let parsed = tracefile::parse_trace(&tracefile::write(&flows));
        let d = lint_trace(&parsed);
        assert!(!d.has_errors());
        let notes: Vec<_> = d.iter().filter(|x| x.code == Code::Mc016).collect();
        assert_eq!(notes.len(), 1, "first regression only: {notes:?}");
        assert_eq!(notes[0].location, Location::Flow(1));
    }

    #[test]
    fn flows_past_declared_duration_warn_and_tail_overrun_notes() {
        let flows = vec![flow(0, 3, 100), flow(3, 0, 950), flow(0, 3, 2_000)];
        // flow 1 ends at 950 + 9*100 = 1850 > 1000; flow 2 never starts.
        let text = tracefile::write_with_duration(&flows, Some(1_000));
        let parsed = tracefile::parse_trace(&text);
        let d = lint_trace(&parsed);
        assert!(!d.has_errors());
        assert!(d.iter().any(|x| x.severity == Severity::Warn
            && x.location == Location::Flow(2)
            && x.message.contains("can never run")));
        assert!(d.iter().any(
            |x| x.severity == Severity::Note && x.message.contains("schedule horizon 1850 µs")
        ));
    }

    #[test]
    fn capacity_vector_validity() {
        let net = line_net();
        let bad = [1.0, -2.0, f64::NAN];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_engines(3)
                .with_capacities(&bad),
        );
        let errors: Vec<_> = d.iter().filter(|x| x.code == Code::Mc017).collect();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().all(|x| x.severity == Severity::Error));

        let mismatched = [1.0, 1.0];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_engines(3)
                .with_capacities(&mismatched),
        );
        assert!(d
            .iter()
            .any(|x| x.code == Code::Mc017 && x.message.contains("3 engines are requested")));
    }

    #[test]
    fn infeasible_capacity_vector_warns_feasible_passes() {
        // One host with overwhelming bandwidth dominates the vertex
        // weights; tiny target fractions cannot absorb it.
        let mut net = Network::new();
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 0);
        let big = net.add_host("big", 0);
        let h1 = net.add_host("h1", 0);
        net.add_link(r0, r1, 10.0, 5000);
        net.add_link(big, r0, 100_000.0, 100);
        net.add_link(h1, r1, 10.0, 100);
        let skewed = [1.0, 1.0, 1.0, 1.0];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_engines(4)
                .with_capacities(&skewed)
                .with_ubfactor(1.05),
        );
        assert!(d.iter().any(|x| x.code == Code::Mc017
            && x.severity == Severity::Warn
            && x.message.contains("balance constraint")));

        // A vector with one big target part is feasible for the same net.
        let generous = [0.97, 0.01, 0.01, 0.01];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_engines(4)
                .with_capacities(&generous)
                .with_ubfactor(1.05),
        );
        assert!(!d.iter().any(|x| x.code == Code::Mc017), "{d:?}");
    }

    #[test]
    fn predicted_load_drift_severity_scales() {
        let net = line_net();
        let predicted = [100.0, 100.0, 100.0];
        // Measured matches the prediction: clean.
        let matching = vec![vec![50u64, 50, 50], vec![50, 50, 50]];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_predicted_loads(&predicted)
                .with_epoch_loads(&matching),
        );
        assert!(!d.iter().any(|x| x.code == Code::Mc019), "{d:?}");
        assert_eq!(d.passes_run(), artifact_registry().len());

        // All measured load on one engine: shares (1,0,0) vs (⅓,⅓,⅓)
        // drift by ⅔ > DRIFT_WARN.
        let skewed = vec![vec![300u64, 0, 0]];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_predicted_loads(&predicted)
                .with_epoch_loads(&skewed),
        );
        assert!(d.iter().any(|x| x.code == Code::Mc019
            && x.severity == Severity::Warn
            && x.message.contains("did not materialize")));
    }

    #[test]
    fn predicted_load_drift_length_mismatch_is_an_error() {
        let net = line_net();
        let predicted = [100.0, 100.0];
        let epochs = vec![vec![10u64, 10, 10]];
        let d = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_predicted_loads(&predicted)
                .with_epoch_loads(&epochs),
        );
        assert!(d
            .iter()
            .any(|x| x.code == Code::Mc019 && x.severity == Severity::Error));
    }

    #[test]
    fn measured_load_drift_flags_the_shifting_boundary() {
        let net = line_net();
        // Stable, stable, then the hotspot jumps engines.
        let epochs = vec![
            vec![100u64, 100, 100],
            vec![110u64, 100, 95],
            vec![10u64, 400, 10],
        ];
        let d = lint_artifacts(&ArtifactInput::new(&net).with_epoch_loads(&epochs));
        let findings: Vec<_> = d.iter().filter(|x| x.code == Code::Mc020).collect();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Warn);
        assert!(findings[0].message.contains("between epoch 2 and epoch 3"));

        // A single epoch has no boundaries: silent.
        let one = vec![vec![1u64, 2, 3]];
        let d = lint_artifacts(&ArtifactInput::new(&net).with_epoch_loads(&one));
        assert!(!d.iter().any(|x| x.code == Code::Mc020), "{d:?}");
    }

    #[test]
    fn drift_passes_skip_when_artifacts_absent() {
        let net = line_net();
        let d = lint_artifacts(&ArtifactInput::new(&net));
        assert!(!d
            .iter()
            .any(|x| matches!(x.code, Code::Mc019 | Code::Mc020)));
        assert_eq!(d.passes_run(), artifact_registry().len());
    }

    #[test]
    fn fast_escape_as_is_warned_slow_one_is_not() {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 1);
        let r2 = net.add_router("r2", 1);
        net.add_link(r0, r1, 1000.0, LOOKAHEAD_HAZARD_US - 20);
        net.add_link(r1, r2, 1000.0, 100);
        let d = lint_artifacts(&ArtifactInput::new(&net));
        let warns: Vec<_> = d.iter().filter(|x| x.code == Code::Mc018).collect();
        // Both AS 0 and AS 1 escape only over the 30 µs link.
        assert_eq!(warns.len(), 2, "{warns:?}");
        assert!(warns[0].message.contains("collapses the sync window"));

        let mut slow = Network::new();
        let a = slow.add_router("a", 0);
        let b = slow.add_router("b", 1);
        slow.add_link(a, b, 1000.0, 100);
        let d = lint_artifacts(&ArtifactInput::new(&slow));
        assert!(!d.iter().any(|x| x.code == Code::Mc018), "{d:?}");
    }
}
