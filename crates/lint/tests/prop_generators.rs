//! Generated topologies must be lint-clean: every network the
//! `massf-topology` generators can produce — the fixed paper topologies
//! and arbitrary BRITE-like graphs — lints with zero Error-level
//! diagnostics. The generators construct connected, positively-weighted,
//! dense-id networks by design; a generator regression that violates any
//! of those invariants shows up here as an `MC*` error.

use massf_lint::{lint_network, LintInput, Severity};
use massf_topology::brite::{generate, BriteConfig, GrowthModel};
use massf_topology::campus::campus;
use massf_topology::teragrid::teragrid;
use massf_topology::Network;
use proptest::prelude::*;

fn assert_error_free(net: &Network, what: &str) {
    let diags = lint_network(net);
    assert_eq!(
        diags.count(Severity::Error),
        0,
        "{what}: {}\n{}",
        diags.summary_line(),
        diags
            .iter()
            .map(|d| format!("{}[{}] {}", d.severity.label(), d.code.as_str(), d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn paper_topologies_lint_error_free() {
    assert_error_free(&campus(), "campus");
    assert_error_free(&teragrid(), "teragrid");
    assert_error_free(
        &generate(&BriteConfig::paper_brite()),
        "brite (paper config)",
    );
    assert_error_free(
        &generate(&BriteConfig::paper_scaleup()),
        "brite (scale-up config)",
    );
}

#[test]
fn paper_topologies_pass_partition_feasibility() {
    // With their documented engine counts, the fixed topologies must also
    // clear the partition-request passes (MC007), not just the structural
    // ones.
    for (net, engines, what) in [
        (campus(), 3usize, "campus"),
        (teragrid(), 5, "teragrid"),
        (generate(&BriteConfig::paper_brite()), 8, "brite"),
    ] {
        let input = LintInput::network(&net).with_engines(engines);
        let diags = massf_lint::lint_scenario(&input);
        assert_eq!(
            diags.count(Severity::Error),
            0,
            "{what} at {engines} engines: {}",
            diags.summary_line()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_brite_topologies_lint_error_free(
        routers in 6usize..24,
        hosts in 4usize..16,
        seed in any::<u64>(),
        waxman in prop::bool::ANY,
    ) {
        let model = if waxman {
            GrowthModel::Waxman { alpha: 0.2, beta: 0.15 }
        } else {
            GrowthModel::BarabasiAlbert { m: 2 }
        };
        let net = generate(&BriteConfig {
            routers,
            hosts,
            model,
            seed,
            ..BriteConfig::paper_brite()
        });
        let diags = lint_network(&net);
        prop_assert_eq!(
            diags.count(Severity::Error),
            0,
            "routers={} hosts={} seed={} waxman={}: {}",
            routers, hosts, seed, waxman, diags.summary_line()
        );
    }
}
