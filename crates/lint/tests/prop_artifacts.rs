//! The artifact audit must accept what the real pipeline produces: a
//! `partition_kway` partitioning of any generator topology — the fixed
//! paper networks and arbitrary BRITE-like graphs — audits with zero
//! Error-level diagnostics. Fragmented or singleton parts are allowed
//! (they are Notes), but empty parts, foreign labels, and coverage
//! mismatches would surface here as MC013 errors.

use massf_lint::{lint_artifacts, ArtifactInput, Severity};
use massf_mapping::weights;
use massf_partition::{partition_kway, PartitionConfig};
use massf_topology::brite::{generate, BriteConfig, GrowthModel};
use massf_topology::campus::campus;
use massf_topology::teragrid::teragrid;
use massf_topology::Network;
use proptest::prelude::*;

fn audit_partitioned(net: &Network, engines: usize, what: &str) {
    let g = weights::latency_graph(net);
    let p = partition_kway(&g, &PartitionConfig::new(engines));
    let diags = lint_artifacts(
        &ArtifactInput::new(net)
            .with_engines(engines)
            .with_partition(&p),
    );
    assert_eq!(
        diags.count(Severity::Error),
        0,
        "{what} at {engines} engines: {}\n{}",
        diags.summary_line(),
        diags
            .iter()
            .map(|d| format!("{}[{}] {}", d.severity.label(), d.code.as_str(), d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn paper_topology_partitions_audit_error_free() {
    audit_partitioned(&campus(), 3, "campus");
    audit_partitioned(&teragrid(), 5, "teragrid");
    audit_partitioned(&generate(&BriteConfig::paper_brite()), 8, "brite");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_topology_partitions_audit_error_free(
        routers in 6usize..20,
        hosts in 4usize..12,
        engines in 2usize..6,
        seed in any::<u64>(),
        waxman in prop::bool::ANY,
    ) {
        let model = if waxman {
            GrowthModel::Waxman { alpha: 0.2, beta: 0.15 }
        } else {
            GrowthModel::BarabasiAlbert { m: 2 }
        };
        let net = generate(&BriteConfig {
            routers,
            hosts,
            model,
            seed,
            ..BriteConfig::paper_brite()
        });
        let g = weights::latency_graph(&net);
        let p = partition_kway(&g, &PartitionConfig::new(engines));
        let diags = lint_artifacts(
            &ArtifactInput::new(&net)
                .with_engines(engines)
                .with_partition(&p),
        );
        prop_assert_eq!(
            diags.count(Severity::Error),
            0,
            "routers={} hosts={} engines={} seed={} waxman={}: {}",
            routers, hosts, engines, seed, waxman, diags.summary_line()
        );
    }
}
