//! Property-based tests for the incremental rebalancer: a diffusive sweep
//! must never increase the measured load imbalance (the gain formula only
//! accepts strictly positive `Δimbalance − λ·cost` moves), must respect
//! its migration budget, and must be a pure function of its inputs — the
//! determinism the run report's epoch block relies on.

use massf_mapping::incremental::{run_online, IncrementalConfig, RebalanceMode};
use massf_mapping::{diffusive_sweep, MapperConfig, MappingStudy};
use massf_metrics::load_imbalance;
use massf_topology::campus::campus;
use massf_traffic::gridnpb::{self, GridNpbConfig};
use proptest::prelude::*;

/// Sums `loads` per engine under `partition`.
fn engine_loads(partition: &[u32], loads: &[u64], nengines: usize) -> Vec<u64> {
    let mut out = vec![0u64; nengines];
    for (v, &p) in partition.iter().enumerate() {
        out[p as usize] += loads[v];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_never_increases_imbalance(
        seed in any::<u64>(),
        nengines in 2usize..6,
        lambda_cost in 0.0f64..0.5,
        budget in 0usize..20,
    ) {
        use rand::{Rng, SeedableRng};
        let net = campus();
        let n = net.node_count();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000)).collect();
        let mut part: Vec<u32> = (0..n).map(|_| rng.gen_range(0..nengines as u32)).collect();
        let before = load_imbalance(&engine_loads(&part, &loads, nengines));

        let moves = diffusive_sweep(&net, &mut part, nengines, &loads, lambda_cost, budget);

        let after = load_imbalance(&engine_loads(&part, &loads, nengines));
        prop_assert!(after <= before + 1e-12,
            "imbalance rose {before} -> {after} over {} moves", moves.len());
        prop_assert!(moves.len() <= budget, "budget exceeded");
        // Every recorded move is a real relabeling onto a valid engine.
        for &(node, from, to) in &moves {
            prop_assert!(from != to);
            prop_assert!((to as usize) < nengines);
            prop_assert!((node as usize) < n);
        }
        // No engine that held nodes before is empty afterwards.
        let mut sizes = vec![0usize; nengines];
        for &p in &part {
            sizes[p as usize] += 1;
        }
        for &(_, from, _) in &moves {
            prop_assert!(sizes[from as usize] >= 1, "engine {from} was emptied");
        }
    }

    #[test]
    fn sweep_is_a_pure_function_of_its_inputs(
        seed in any::<u64>(),
        budget in 1usize..12,
    ) {
        use rand::{Rng, SeedableRng};
        let net = campus();
        let n = net.node_count();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(0..500)).collect();
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3u32)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let ma = diffusive_sweep(&net, &mut a, 3, &loads, 0.01, budget);
        let mb = diffusive_sweep(&net, &mut b, 3, &loads, 0.01, budget);
        prop_assert_eq!(ma, mb);
        prop_assert_eq!(a, b);
    }
}

/// Phase-shifting foreground mirroring the unit tests: enough traffic to
/// make epochs meaningful while staying fast.
fn shifting_study_and_flows(threads: usize) -> (MappingStudy, Vec<massf_traffic::FlowSpec>) {
    let net = campus();
    let hosts = net.hosts();
    let placement: Vec<_> = hosts.iter().copied().step_by(4).take(9).collect();
    let cfg = GridNpbConfig {
        base_bytes: 400_000,
        ..Default::default()
    };
    let flows = gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement);
    let study = MappingStudy::new(net, MapperConfig::new(3).with_threads(threads));
    (study, flows)
}

/// The epoch block is a function of virtual time: every measured load,
/// drift value, and boundary decision must be bit-identical between the
/// serial reference path and a parallel mapping pipeline.
#[test]
fn online_epochs_are_identical_across_thread_counts() {
    let cfg = IncrementalConfig::default();
    let (s1, flows) = shifting_study_and_flows(1);
    let base = run_online(&s1, &flows, &[], &cfg, RebalanceMode::Incremental);
    for threads in [2, 4] {
        let (st, flows_t) = shifting_study_and_flows(threads);
        let other = run_online(&st, &flows_t, &[], &cfg, RebalanceMode::Incremental);
        assert_eq!(
            base.epoch_stats, other.epoch_stats,
            "epoch stats vary at {threads} threads"
        );
        assert_eq!(base.migrated_nodes, other.migrated_nodes);
        for (a, b) in base.epoch_partitions.iter().zip(&other.epoch_partitions) {
            assert_eq!(a.part, b.part, "partitions vary at {threads} threads");
        }
    }
    // And the documented invariant holds on the real run too: no epoch's
    // rebalance ever leaves the measured loads worse than it found them.
    for e in &base.epoch_stats {
        assert!(
            e.imbalance_after <= e.imbalance_before + 1e-12,
            "epoch {} worsened imbalance",
            e.epoch
        );
    }
}
