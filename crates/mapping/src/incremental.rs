//! Incremental (diffusive) repartitioning — local rebalancing at epoch
//! boundaries without a global partitioner pass.
//!
//! [`crate::dynamic`] answers the paper's §6 call for dynamic remapping by
//! repeating the *global* PROFILE round every epoch: re-weight the whole
//! graph, re-run the multilevel partitioner, migrate whatever changed.
//! That recovers balance but moves many nodes (the partitioner has no
//! loyalty to the incumbent assignment) and re-runs METIS-scale work
//! mid-emulation. This module implements the local alternative from the
//! ROADMAP's online-repartitioning item: **diffusive vertex migration**
//! (Kurve et al.) with migrations charged against the imbalance they save
//! (Räcke/Schmid/Zabrodin) — see PAPERS.md.
//!
//! ## The algorithm (DESIGN.md §15)
//!
//! At each epoch boundary the engine-side feed
//! ([`massf_engine::stepping::SteppableEmulation::netflow_epoch_slice`])
//! yields the epoch's own NetFlow records; [`crate::weights::
//! accumulate_measured_with`] converts them into per-node measured loads
//! and per-link (cut) traffic. [`diffusive_sweep`] then walks *boundary*
//! nodes — nodes with a neighbor on another engine — in ascending node-id
//! order. Each boundary node evaluates moving to each neighboring engine
//! (ascending engine id) and computes the local gain
//!
//! ```text
//! gain = Δimbalance − λ · migration_cost
//! ```
//!
//! where `Δimbalance` is the drop in the coefficient-of-variation load
//! imbalance if the node moved, and `λ · migration_cost` expresses the
//! per-node migration stall as a fraction of the epoch it disrupts. The
//! best strictly positive gain is applied immediately (ties break to the
//! lowest engine id) and the sweep repeats until a full pass applies no
//! move or the per-epoch migration budget is exhausted. A move is only
//! applied when `Δimbalance > λ·cost ≥ 0`, so **an epoch's rebalance can
//! never increase the measured imbalance** — the property the proptests
//! pin down.
//!
//! The delta-partition is handed to the existing [`SteppableEmulation::
//! repartition`] migration path; no METIS-style restart ever runs
//! mid-emulation.
//!
//! ## The drift trigger (MC019 / MC020)
//!
//! Rebalancing is *triggered*, not unconditional. Every epoch computes
//! the [`massf_metrics::drift`] total-variation distance of its measured
//! per-engine load shares against the previous epoch's (the MC020
//! metric; the first epoch compares against the balanced target shares)
//! and against the PLACE-predicted shares (the MC019 metric, recorded
//! for the run report and the lint passes). A quiet epoch — measured
//! drift under [`IncrementalConfig::drift_threshold`] — skips the
//! rebalance entirely: the traffic shape did not move, so the incumbent
//! partition is as good as it was when it was last fixed.
//!
//! ## Determinism
//!
//! Epoch loads are functions of virtual time only: the NetFlow slices,
//! the blocked accumulation, and the fixed-order sweep are all
//! bit-identical at every `--threads` setting, so a run report's epoch
//! block is byte-identical across thread counts (pinned by the golden
//! tests).
//!
//! ```
//! use massf_mapping::incremental::{run_incremental, IncrementalConfig};
//! use massf_mapping::{MapperConfig, MappingStudy};
//! use massf_topology::campus::campus;
//! use massf_traffic::gridnpb::{self, GridNpbConfig};
//!
//! // GridNPB's staged DAGs shift load between host groups over time.
//! let study = MappingStudy::new(campus(), MapperConfig::new(3));
//! let hosts = study.net.hosts();
//! let placement: Vec<_> = hosts.iter().step_by(4).take(9).copied().collect();
//! let cfg = GridNpbConfig { base_bytes: 200_000, ..Default::default() };
//! let flows = gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement);
//!
//! let out = run_incremental(&study, &flows, &[], &IncrementalConfig::default());
//! assert_eq!(out.epoch_stats.len(), IncrementalConfig::default().epochs);
//! for e in &out.epoch_stats {
//!     // A rebalanced epoch never ends worse than it started.
//!     assert!(e.imbalance_after <= e.imbalance_before + 1e-12);
//! }
//! ```

use crate::profile::map_profile;
use crate::top::map_top;
use crate::weights;
use crate::MappingStudy;
use massf_engine::netflow::{merge_dumps, FlowRecord};
use massf_engine::stepping::{MigrationCost, SteppableEmulation};
use massf_engine::{CostModel, EmulationConfig, EmulationReport};
use massf_metrics::drift::{load_drift, load_drift_u64};
use massf_metrics::load_imbalance;
use massf_partition::Partitioning;
use massf_topology::{Network, NodeId};
use massf_traffic::flow::horizon_us;
use massf_traffic::{FlowSpec, PredictedFlow};

/// How (and whether) an epoch boundary rebalances the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceMode {
    /// Measure drift at every boundary but never move a node.
    Off,
    /// Full PROFILE remap per boundary ([`crate::dynamic`]'s strategy).
    Global,
    /// Local diffusive boundary-node migration ([`diffusive_sweep`]).
    Incremental,
}

impl RebalanceMode {
    /// Parses the CLI spelling (`off` / `global` / `incremental`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(RebalanceMode::Off),
            "global" => Some(RebalanceMode::Global),
            "incremental" => Some(RebalanceMode::Incremental),
            _ => None,
        }
    }

    /// The stable lower-case label (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            RebalanceMode::Off => "off",
            RebalanceMode::Global => "global",
            RebalanceMode::Incremental => "incremental",
        }
    }
}

/// Configuration of an online-rebalancing run.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Number of epochs (1 = static, no boundaries to rebalance at).
    pub epochs: usize,
    /// Wall-clock cost charged per remap.
    pub migration: MigrationCost,
    /// Cost model for the emulation itself.
    pub cost: CostModel,
    /// Migration-cost weight λ in the gain `Δimbalance − λ·cost`: the
    /// per-node migration stall, expressed as a fraction of the epoch
    /// length, scaled by λ before it is charged against imbalance saved.
    pub lambda: f64,
    /// Per-epoch migration budget: the diffusive sweep stops after moving
    /// this many nodes, bounding the stall any single boundary can cause.
    pub budget: usize,
    /// Quiet-epoch trigger: when the measured per-engine load drift
    /// (total-variation, [`massf_metrics::drift`]) stays under this
    /// threshold, the boundary skips rebalancing entirely.
    pub drift_threshold: f64,
    /// Global mode only: skip a remap whose new partition moves fewer
    /// nodes than this (mirrors [`crate::dynamic::DynamicConfig`]).
    pub min_moved_nodes: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            migration: MigrationCost::default(),
            cost: CostModel::live_application(),
            lambda: 0.5,
            budget: 8,
            drift_threshold: 0.02,
            min_moved_nodes: 2,
        }
    }
}

/// What one epoch measured and decided — the run report's epoch block.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (1-based; epoch 1 ends at the first boundary).
    pub epoch: usize,
    /// Virtual end time of the epoch (µs).
    pub end_us: u64,
    /// Measured per-engine load (kernel events attributed via NetFlow)
    /// during this epoch, under the partition in force while it ran.
    pub engine_loads: Vec<u64>,
    /// Packets that crossed engine boundaries this epoch (per-edge cut
    /// traffic summed over cut links).
    pub cut_packets: u64,
    /// MC020 metric: total-variation drift of this epoch's load shares
    /// vs. the previous epoch's (epoch 1: vs. the balanced target).
    pub drift_measured: f64,
    /// MC019 metric: total-variation drift of this epoch's load shares
    /// vs. the PLACE-predicted shares under the current partition.
    pub drift_predicted: f64,
    /// True when this boundary migrated nodes.
    pub applied: bool,
    /// True when this boundary evaluated a rebalance and declined (quiet
    /// drift, no positive-gain move, or below the global-mode gate). The
    /// final epoch has no boundary: both flags stay false.
    pub skipped: bool,
    /// Nodes migrated at this boundary.
    pub moves: usize,
    /// Wall-clock migration cost charged (µs).
    pub cost_us: f64,
    /// Imbalance of this epoch's measured loads before the rebalance.
    pub imbalance_before: f64,
    /// Imbalance of the same loads re-summed under the new partition
    /// (equals `imbalance_before` when nothing moved).
    pub imbalance_after: f64,
}

/// Outcome of an online-rebalancing run.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The final emulation report (covers the whole run).
    pub report: EmulationReport,
    /// Per-epoch measurements and decisions, in epoch order.
    pub epoch_stats: Vec<EpochStats>,
    /// Partition in force during each epoch.
    pub epoch_partitions: Vec<Partitioning>,
    /// Total nodes migrated.
    pub migrated_nodes: usize,
    /// Remaps actually applied (skipped boundaries excluded).
    pub remaps_applied: usize,
}

/// One deterministic diffusive pass over `partition` in place: boundary
/// nodes (ascending node id) evaluate moving to each neighboring engine
/// (ascending engine id); the best gain `Δimbalance − lambda_cost` is
/// applied immediately when strictly positive; sweeps repeat until a full
/// pass applies nothing or `budget` nodes have moved. A source engine is
/// never emptied. Returns the applied moves as `(node, from, to)`.
///
/// Pure and engine-free: callable on any load vector, which is what the
/// property tests exploit.
pub fn diffusive_sweep(
    net: &Network,
    partition: &mut [u32],
    nengines: usize,
    node_loads: &[u64],
    lambda_cost: f64,
    budget: usize,
) -> Vec<(NodeId, u32, u32)> {
    let n = net.node_count();
    assert_eq!(partition.len(), n, "partition length mismatch");
    assert_eq!(node_loads.len(), n, "load length mismatch");
    assert!(lambda_cost >= 0.0);
    let mut engine_loads = vec![0u64; nengines];
    let mut engine_sizes = vec![0usize; nengines];
    for v in 0..n {
        engine_loads[partition[v] as usize] += node_loads[v];
        engine_sizes[partition[v] as usize] += 1;
    }
    let mut moves = Vec::new();
    let mut candidates: Vec<u32> = Vec::new();
    loop {
        let mut moved_this_pass = false;
        for v in 0..n {
            if moves.len() >= budget {
                return moves;
            }
            let from = partition[v] as usize;
            if engine_sizes[from] <= 1 {
                continue; // never empty an engine
            }
            candidates.clear();
            candidates.extend(
                net.neighbors(v as NodeId)
                    .iter()
                    .map(|&(nb, _)| partition[nb as usize])
                    .filter(|&e| e as usize != from),
            );
            if candidates.is_empty() {
                continue; // interior node
            }
            candidates.sort_unstable();
            candidates.dedup();
            let cur = load_imbalance(&engine_loads);
            let mut best: Option<(f64, u32)> = None;
            for &to in &candidates {
                engine_loads[from] -= node_loads[v];
                engine_loads[to as usize] += node_loads[v];
                let moved = load_imbalance(&engine_loads);
                engine_loads[to as usize] -= node_loads[v];
                engine_loads[from] += node_loads[v];
                let gain = (cur - moved) - lambda_cost;
                // Strict `>` twice: only positive gains move, and a tie
                // keeps the earlier (lowest-id) target engine.
                if gain > 0.0 && best.is_none_or(|(b, _)| gain > b) {
                    best = Some((gain, to));
                }
            }
            if let Some((_, to)) = best {
                engine_loads[from] -= node_loads[v];
                engine_loads[to as usize] += node_loads[v];
                engine_sizes[from] -= 1;
                engine_sizes[to as usize] += 1;
                partition[v] = to;
                moves.push((v as NodeId, from as u32, to));
                moved_this_pass = true;
            }
        }
        if !moved_this_pass {
            return moves;
        }
    }
}

/// Runs `flows` with online rebalancing in `mode`. The initial epoch uses
/// the TOP partition (nothing has been measured yet); every boundary
/// measures the epoch's NetFlow slice, computes the MC019/MC020 drift
/// values, and — unless the epoch was quiet — rebalances per `mode`.
/// `predicted` feeds the MC019 comparison (PLACE's prediction); pass
/// `&[]` when no prediction exists and the predicted drift reads 0.
pub fn run_online(
    study: &MappingStudy,
    flows: &[FlowSpec],
    predicted: &[PredictedFlow],
    cfg: &IncrementalConfig,
    mode: RebalanceMode,
) -> IncrementalOutcome {
    assert!(cfg.epochs >= 1);
    let n = study.net.node_count();
    let initial = map_top(&study.net, &study.cfg);
    let horizon = horizon_us(flows).saturating_add(1);
    let epoch_len = (horizon / cfg.epochs as u64).max(1);

    // PLACE's predicted per-node loads, the MC019 baseline. An empty
    // prediction accumulates to all zeros, which drifts by 0 from
    // everything (an absent prediction cannot be wrong).
    let (_, predicted_node) = weights::accumulate_predicted_with(
        &study.net,
        &study.tables,
        predicted,
        study.cfg.parallelism,
    );

    let emu_cfg = EmulationConfig {
        partition: initial.part.clone(),
        nengines: initial.nparts,
        counter_window_us: study.counter_window_us,
        netflow: true, // live profiling is what enables rebalancing
        cost: cfg.cost,
        engine_speeds: study.cfg.engine_capacities.clone(),
        scheduler: massf_engine::SchedulerKind::default(),
    };
    let mut emu = SteppableEmulation::new(&study.net, &study.tables, flows, emu_cfg);

    let lambda_cost = cfg.lambda * (cfg.migration.per_node_us / epoch_len as f64);
    let mut epoch_partitions = vec![initial.clone()];
    let mut current = initial;
    let mut epoch_stats: Vec<EpochStats> = Vec::new();
    let mut prev_engine_loads: Option<Vec<u64>> = None;
    // Epoch slices kept for the global mode's two-epoch lookback (the
    // same recency filter crate::dynamic uses).
    let mut slice_history: Vec<Vec<FlowRecord>> = Vec::new();
    for epoch in 1..=cfg.epochs as u64 {
        let now = epoch * epoch_len;
        emu.run_until(now);
        let records = emu.netflow_epoch_slice();
        let (per_link, per_node) = weights::accumulate_measured_with(
            &study.net,
            &study.tables,
            &records,
            study.cfg.parallelism,
        );

        let mut engine_loads = vec![0u64; current.nparts];
        for v in 0..n {
            engine_loads[current.part[v] as usize] += per_node[v];
        }
        let cut_packets: u64 = study
            .net
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| current.part[l.a as usize] != current.part[l.b as usize])
            .map(|(i, _)| per_link[i])
            .sum();
        let measured_f: Vec<f64> = engine_loads.iter().map(|&l| l as f64).collect();
        let drift_measured = match &prev_engine_loads {
            Some(prev) => load_drift_u64(prev, &engine_loads),
            // Epoch 1 has no history: drift vs. the balanced target
            // shares (capacity-proportional; uniform by default), i.e.
            // "how far from balanced did the first epoch land".
            None => {
                let target: Vec<f64> = study
                    .cfg
                    .engine_capacities
                    .clone()
                    .unwrap_or_else(|| vec![1.0; current.nparts]);
                load_drift(&target, &measured_f)
            }
        };
        let mut predicted_engine = vec![0.0f64; current.nparts];
        for v in 0..n {
            predicted_engine[current.part[v] as usize] += predicted_node[v];
        }
        let drift_predicted = load_drift(&predicted_engine, &measured_f);

        let imbalance_before = load_imbalance(&engine_loads);
        let mut st = EpochStats {
            epoch: epoch as usize,
            end_us: now.min(horizon),
            engine_loads: engine_loads.clone(),
            cut_packets,
            drift_measured,
            drift_predicted,
            applied: false,
            skipped: false,
            moves: 0,
            cost_us: 0.0,
            imbalance_before,
            imbalance_after: imbalance_before,
        };

        slice_history.push(records);
        let boundary = epoch < cfg.epochs as u64 && !emu.finished();
        if boundary && mode != RebalanceMode::Off {
            let candidate: Option<Vec<u32>> = if drift_measured < cfg.drift_threshold {
                None // quiet epoch: the traffic shape did not move
            } else {
                match mode {
                    RebalanceMode::Incremental => {
                        let mut part = current.part.clone();
                        let moves = diffusive_sweep(
                            &study.net,
                            &mut part,
                            current.nparts,
                            &per_node,
                            lambda_cost,
                            cfg.budget,
                        );
                        (!moves.is_empty()).then_some(part)
                    }
                    RebalanceMode::Global => {
                        let lookback = slice_history.len().saturating_sub(2);
                        let recent = merge_dumps(slice_history[lookback..].to_vec());
                        let cand = map_profile(&study.net, &study.tables, &recent, &study.cfg);
                        let moved = current
                            .part
                            .iter()
                            .zip(&cand.part)
                            .filter(|(a, b)| a != b)
                            .count();
                        (moved >= cfg.min_moved_nodes).then_some(cand.part)
                    }
                    RebalanceMode::Off => unreachable!(),
                }
            };
            match candidate {
                Some(part) => {
                    let moved = emu.repartition(part.clone(), cfg.migration);
                    st.applied = true;
                    st.moves = moved;
                    st.cost_us = cfg.migration.fixed_us + moved as f64 * cfg.migration.per_node_us;
                    current = Partitioning {
                        part,
                        nparts: current.nparts,
                    };
                    let mut after = vec![0u64; current.nparts];
                    for v in 0..n {
                        after[current.part[v] as usize] += per_node[v];
                    }
                    st.imbalance_after = load_imbalance(&after);
                }
                None => st.skipped = true,
            }
        }
        prev_engine_loads = Some(engine_loads);
        epoch_stats.push(st);
        if epoch < cfg.epochs as u64 {
            epoch_partitions.push(current.clone());
        }
    }
    emu.run_to_completion();
    let migrated_nodes = emu.migrated_nodes;
    let remaps_applied = emu.remaps;
    IncrementalOutcome {
        report: emu.finish(),
        epoch_stats,
        epoch_partitions,
        migrated_nodes,
        remaps_applied,
    }
}

/// [`run_online`] in [`RebalanceMode::Incremental`] — the diffusive
/// rebalancer this module exists for.
pub fn run_incremental(
    study: &MappingStudy,
    flows: &[FlowSpec],
    predicted: &[PredictedFlow],
    cfg: &IncrementalConfig,
) -> IncrementalOutcome {
    run_online(study, flows, predicted, cfg, RebalanceMode::Incremental)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapperConfig;
    use massf_topology::campus::campus;
    use massf_traffic::gridnpb::{self, GridNpbConfig};

    fn study() -> MappingStudy {
        MappingStudy::new(campus(), MapperConfig::new(3))
    }

    fn phase_shifting_flows(study: &MappingStudy) -> Vec<FlowSpec> {
        // GridNPB's staged DAGs shift load between host groups over time.
        let hosts = study.net.hosts();
        let placement: Vec<_> = hosts.iter().step_by(4).take(9).copied().collect();
        let cfg = GridNpbConfig {
            base_bytes: 400_000,
            ..Default::default()
        };
        gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement)
    }

    #[test]
    fn incremental_run_conserves_packets() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let injected: u64 = flows.iter().map(|f| f.packets).sum();
        let out = run_incremental(&s, &flows, &[], &IncrementalConfig::default());
        assert_eq!(out.report.delivered, injected);
        assert_eq!(out.report.dropped, 0);
        assert_eq!(out.epoch_stats.len(), 4);
    }

    #[test]
    fn epochs_never_increase_measured_imbalance() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let out = run_incremental(&s, &flows, &[], &IncrementalConfig::default());
        for e in &out.epoch_stats {
            assert!(
                e.imbalance_after <= e.imbalance_before + 1e-12,
                "epoch {} went {:.4} -> {:.4}",
                e.epoch,
                e.imbalance_before,
                e.imbalance_after
            );
            if e.applied {
                assert!(e.moves > 0);
                assert!(e.cost_us > 0.0);
                assert!(!e.skipped);
            } else {
                assert_eq!(e.moves, 0);
                assert_eq!(e.cost_us, 0.0);
                assert_eq!(e.imbalance_after, e.imbalance_before);
            }
        }
    }

    #[test]
    fn budget_bounds_per_epoch_moves() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let cfg = IncrementalConfig {
            budget: 3,
            ..Default::default()
        };
        let out = run_incremental(&s, &flows, &[], &cfg);
        for e in &out.epoch_stats {
            assert!(e.moves <= 3, "epoch {} moved {}", e.epoch, e.moves);
        }
        assert!(out.migrated_nodes <= 3 * (cfg.epochs - 1));
    }

    #[test]
    fn off_mode_measures_but_never_moves() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let out = run_online(
            &s,
            &flows,
            &[],
            &IncrementalConfig::default(),
            RebalanceMode::Off,
        );
        assert_eq!(out.migrated_nodes, 0);
        assert_eq!(out.remaps_applied, 0);
        assert!(out.epoch_stats.iter().all(|e| !e.applied && !e.skipped));
        // Drift is still measured: shifting traffic must register.
        assert!(out.epoch_stats.iter().any(|e| e.drift_measured > 0.0));
    }

    #[test]
    fn high_threshold_skips_every_boundary() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let cfg = IncrementalConfig {
            drift_threshold: 2.0, // TV distance is ≤ 1: everything is quiet
            ..Default::default()
        };
        let out = run_incremental(&s, &flows, &[], &cfg);
        assert_eq!(out.migrated_nodes, 0);
        assert_eq!(out.remaps_applied, 0);
        let skips = out.epoch_stats.iter().filter(|e| e.skipped).count();
        assert_eq!(skips, cfg.epochs - 1, "every boundary skipped as quiet");
        // The emulation itself is untouched by skipped boundaries: same
        // events as a static TOP run.
        let top = s.map(crate::Approach::Top, &[], &flows);
        let st = s.evaluate(&top, &flows, CostModel::live_application());
        assert_eq!(out.report.total_events(), st.total_events());
    }

    #[test]
    fn incremental_moves_fewer_nodes_than_global() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let cfg = IncrementalConfig::default();
        let inc = run_online(&s, &flows, &[], &cfg, RebalanceMode::Incremental);
        let glo = run_online(&s, &flows, &[], &cfg, RebalanceMode::Global);
        if glo.migrated_nodes > 0 {
            assert!(
                inc.migrated_nodes < glo.migrated_nodes,
                "incremental {} vs global {}",
                inc.migrated_nodes,
                glo.migrated_nodes
            );
        }
        assert!(inc.migrated_nodes <= cfg.budget * (cfg.epochs - 1));
    }

    #[test]
    fn sweep_is_deterministic_and_gain_positive() {
        let s = study();
        // A deliberately skewed synthetic load: everything on engine 0.
        let n = s.net.node_count();
        let nengines = 3;
        let base: Vec<u32> = (0..n).map(|v| (v % nengines) as u32).collect();
        let loads: Vec<u64> = (0..n).map(|v| if base[v] == 0 { 100 } else { 1 }).collect();
        let before = {
            let mut el = vec![0u64; nengines];
            for v in 0..n {
                el[base[v] as usize] += loads[v];
            }
            load_imbalance(&el)
        };
        let mut a = base.clone();
        let mut b = base.clone();
        let moves_a = diffusive_sweep(&s.net, &mut a, nengines, &loads, 0.0, 16);
        let moves_b = diffusive_sweep(&s.net, &mut b, nengines, &loads, 0.0, 16);
        assert_eq!(a, b, "fixed sweep order is deterministic");
        assert_eq!(moves_a, moves_b);
        assert!(!moves_a.is_empty(), "skewed load must yield moves");
        let after = {
            let mut el = vec![0u64; nengines];
            for v in 0..n {
                el[a[v] as usize] += loads[v];
            }
            load_imbalance(&el)
        };
        assert!(
            after < before,
            "sweep must reduce imbalance: {before} -> {after}"
        );
        // No engine was emptied.
        for e in 0..nengines {
            assert!(a.iter().any(|&p| p as usize == e));
        }
    }

    #[test]
    fn infinite_lambda_cost_freezes_the_sweep() {
        let s = study();
        let n = s.net.node_count();
        let mut part: Vec<u32> = (0..n).map(|v| (v % 3) as u32).collect();
        let loads: Vec<u64> = (0..n as u64).collect();
        let moves = diffusive_sweep(&s.net, &mut part, 3, &loads, f64::INFINITY, 16);
        assert!(moves.is_empty(), "no gain can beat an infinite cost");
    }

    #[test]
    fn deterministic_across_runs() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let a = run_incremental(&s, &flows, &[], &IncrementalConfig::default());
        let b = run_incremental(&s, &flows, &[], &IncrementalConfig::default());
        assert_eq!(a.report.engine_events, b.report.engine_events);
        assert_eq!(a.epoch_stats, b.epoch_stats);
        assert_eq!(a.epoch_partitions, b.epoch_partitions);
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            RebalanceMode::Off,
            RebalanceMode::Global,
            RebalanceMode::Incremental,
        ] {
            assert_eq!(RebalanceMode::parse(m.label()), Some(m));
        }
        assert_eq!(RebalanceMode::parse("metis"), None);
    }
}
