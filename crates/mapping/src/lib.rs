//! # massf-mapping
//!
//! The paper's contribution: three approaches for constructing the graph
//! partitioner's input from an emulated network and whatever traffic
//! knowledge is available (§3).
//!
//! * [`top`] — **TOP**: topology only. Vertex weight = total in/out link
//!   bandwidth; the single objective maximizes cut link latency (encoded as
//!   minimizing `K / latency` edge weights).
//! * [`place`] — **PLACE**: topology + application placement. Background
//!   generators predict their average bandwidth per endpoint pair;
//!   foreground applications are assumed to saturate their injection
//!   points, talking evenly to all peers. Predicted flows are routed
//!   (traceroute-style) and accumulated per link/node; the §2.3
//!   multi-objective combination balances latency against cut traffic.
//! * [`profile`] — **PROFILE**: a profiling emulation with NetFlow
//!   recording yields measured per-router/per-link traffic; the §3.3
//!   clustering splits the run into load phases, each a constraint column
//!   of a multi-constraint partition.
//!
//! [`weights`] builds the weighted graphs all three share; [`segments`]
//! implements the phase clustering; [`pipeline`] wires the full
//! profile-then-repartition loop.

//! ```
//! use massf_mapping::{Approach, MapperConfig, MappingStudy};
//! use massf_topology::campus::campus;
//!
//! let study = MappingStudy::new(campus(), MapperConfig::new(3));
//! let partition = study.map(Approach::Top, &[], &[]);
//! assert_eq!(partition.nparts, 3);
//! assert!(partition.part_sizes().iter().all(|&s| s > 0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// CSR-style code indexes several parallel arrays with one counter; the
// iterator rewrites clippy suggests are less clear there.
#![allow(clippy::needless_range_loop)]

pub mod dynamic;
pub mod incremental;
pub mod pipeline;
pub mod place;
pub mod profile;
pub mod segments;
pub mod top;
pub mod weights;

pub use dynamic::{run_dynamic, DynamicConfig, DynamicOutcome};
pub use incremental::{
    diffusive_sweep, run_incremental, run_online, EpochStats, IncrementalConfig,
    IncrementalOutcome, RebalanceMode,
};
pub use massf_par::Parallelism;
pub use massf_routing::RoutingKind;
pub use pipeline::{Approach, MappingStudy};

/// Shared configuration of all mapping approaches.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Number of simulation engines (partition count).
    pub engines: usize,
    /// Latency-objective priority `p` of §2.3; the paper's default ratio is
    /// 6:4, i.e. `p = 0.6`.
    pub latency_priority: f64,
    /// Partitioner imbalance tolerance.
    pub ubfactor: f64,
    /// Partitioner seed (all runs deterministic).
    pub seed: u64,
    /// Add the routing-table memory model as an extra balance constraint
    /// (§2.2.2 / §5 memory-weight "magic number" discussion).
    pub include_memory: bool,
    /// PROFILE: maximum phase segments fed as constraints.
    pub max_segments: usize,
    /// PROFILE: buckets with fewer total events are treated as idle.
    pub min_bucket_events: u64,
    /// Relative capacity (CPU speed) per engine. `None` = homogeneous
    /// cluster, the paper's assumption (§5). When set, the partitioner
    /// targets weight shares proportional to capacity and the cost model
    /// scales per-engine event processing accordingly.
    pub engine_capacities: Option<Vec<f64>>,
    /// Worker threads for the mapping pipeline (routing-table build,
    /// traffic accumulation, partitioner restarts). Defaults to
    /// [`Parallelism::available`]; every stage is bit-identical at every
    /// thread count, and `Parallelism::serial()` runs the exact
    /// single-threaded reference paths.
    pub parallelism: Parallelism,
    /// Routing-table representation the pipeline builds. Dense and
    /// compressed answer every query bit-identically, so this only moves
    /// the memory/speed trade-off; compressed (the default) breaks the
    /// O(n²) table wall.
    pub routing: RoutingKind,
}

impl MapperConfig {
    /// Defaults for `engines` engines (p = 0.6, ub = 1.25, 3 segments).
    ///
    /// The imbalance tolerance is looser than METIS's classic 1.03: the
    /// emulation graphs are tiny (tens of nodes per engine) with highly
    /// skewed traffic weights, and an over-tight constraint forces the
    /// partitioner to cut low-latency access links, destroying the
    /// conservative engine's lookahead — exactly the §2.2.3 trade-off.
    pub fn new(engines: usize) -> Self {
        Self {
            engines,
            latency_priority: 0.6,
            ubfactor: 1.25,
            seed: 0x6a55e,
            include_memory: false,
            max_segments: 3,
            min_bucket_events: 16,
            engine_capacities: None,
            parallelism: Parallelism::available(),
            routing: RoutingKind::default(),
        }
    }

    /// Builder: set heterogeneous engine capacities (length = engines).
    pub fn with_engine_capacities(mut self, capacities: Vec<f64>) -> Self {
        assert_eq!(capacities.len(), self.engines);
        self.engine_capacities = Some(capacities);
        self
    }

    /// Builder: set the latency priority `p`.
    pub fn with_latency_priority(mut self, p: f64) -> Self {
        self.latency_priority = p;
        self
    }

    /// Builder: toggle the memory constraint.
    pub fn with_memory_constraint(mut self, on: bool) -> Self {
        self.include_memory = on;
        self
    }

    /// Builder: set the partitioner seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the pipeline thread count (`1` = the exact serial
    /// code paths).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallelism = Parallelism::new(threads);
        self
    }

    /// Builder: set the pipeline parallelism directly.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Builder: select the routing-table representation.
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// The underlying partitioner configuration.
    pub fn partition_config(&self) -> massf_partition::PartitionConfig {
        let cfg = massf_partition::PartitionConfig::new(self.engines)
            .with_seed(self.seed)
            .with_ubfactor(self.ubfactor)
            .with_threads(self.parallelism);
        match &self.engine_capacities {
            Some(caps) => cfg.with_capacities(caps),
            None => cfg,
        }
    }
}
