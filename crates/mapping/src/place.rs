//! The application-placement-based mapping approach — PLACE (§3.2).
//!
//! Traffic is *predicted* from two sources:
//!
//! * background generators describe their own average bandwidth per
//!   endpoint pair (a reasonable ask, since background traffic is an
//!   aggregate);
//! * the foreground application is assumed to saturate its injection
//!   points, "every node talks to all other nodes with evenly distributed
//!   bandwidth".
//!
//! Both predictions are routed (route discovery via the emulated ICMP /
//! traceroute path, here the routing tables) and accumulated per link and
//! node; the §2.3 multi-objective combination then balances the latency
//! objective against cut-traffic minimization.

use crate::weights::{
    append_memory_constraint, latency_graph, predicted_traffic_graph_with, with_vertex_weights,
};
use crate::MapperConfig;
use massf_obs::Recorder;
use massf_partition::multiobjective::combine_and_partition_obs;
use massf_partition::Partitioning;
use massf_routing::RoutingTables;
use massf_topology::{Network, NodeId};
use massf_traffic::PredictedFlow;

/// Builds the foreground prediction for an application attached at
/// `injection_points`: each point saturates its access link and spreads
/// the bandwidth evenly over all other points (§3.2).
pub fn foreground_prediction(net: &Network, injection_points: &[NodeId]) -> Vec<PredictedFlow> {
    let access: Vec<f64> = injection_points
        .iter()
        .map(|&h| net.total_bandwidth(h))
        .collect();
    massf_traffic::scalapack::predict_uniform(injection_points, &access)
}

/// Maps the network using placement-predicted traffic.
///
/// `predicted` is the concatenation of background-generator predictions and
/// [`foreground_prediction`]s for every application in the experiment.
pub fn map_place(
    net: &Network,
    tables: &RoutingTables,
    predicted: &[PredictedFlow],
    cfg: &MapperConfig,
) -> Partitioning {
    map_place_obs(net, tables, predicted, cfg, &mut Recorder::new())
}

/// [`map_place`] with observability: records a `mapping/place/weights` span
/// and the `place/{latency,bandwidth,combined}` restart batches on `rec`.
pub fn map_place_obs(
    net: &Network,
    tables: &RoutingTables,
    predicted: &[PredictedFlow],
    cfg: &MapperConfig,
    rec: &mut Recorder,
) -> Partitioning {
    let span = rec.start();
    let traffic = predicted_traffic_graph_with(net, tables, predicted, cfg.parallelism);
    // Both objective views must balance the same quantity: the predicted
    // per-node traffic (the computation constraint of §2.2.2), optionally
    // plus memory.
    let (ncon, vwgt) = if cfg.include_memory {
        append_memory_constraint(net, 1, traffic.vwgt())
    } else {
        (1, traffic.vwgt().to_vec())
    };
    let latency = with_vertex_weights(&latency_graph(net), ncon, vwgt.clone());
    let traffic = with_vertex_weights(&traffic, ncon, vwgt);
    rec.finish("mapping/place/weights", span);

    combine_and_partition_obs(
        &latency,
        &traffic,
        cfg.latency_priority,
        &cfg.partition_config(),
        "place",
        rec,
    )
    .partitioning
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top::map_top;
    use crate::weights::{accumulate_predicted, predicted_traffic_graph};
    use massf_partition::quality::edge_cut;
    use massf_topology::campus::campus;
    use massf_topology::teragrid::teragrid;

    #[test]
    fn foreground_prediction_saturates_access_links() {
        let net = campus();
        let hosts: Vec<NodeId> = net.hosts().into_iter().take(4).collect();
        let pred = foreground_prediction(&net, &hosts);
        assert_eq!(pred.len(), 12);
        // Each host's 100 Mbps access link spread over 3 peers.
        for p in &pred {
            assert!((p.bandwidth_mbps - 100.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn place_partition_is_valid() {
        let net = teragrid();
        let tables = RoutingTables::build(&net);
        let hosts: Vec<NodeId> = net.hosts().into_iter().take(10).collect();
        let pred = foreground_prediction(&net, &hosts);
        let p = map_place(&net, &tables, &pred, &MapperConfig::new(5));
        assert_eq!(p.nparts, 5);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn place_balances_predicted_load_better_than_top() {
        // The point of PLACE: the *predicted per-node load* ends up balanced
        // across engines, which traffic-blind TOP cannot guarantee.
        let net = teragrid();
        let tables = RoutingTables::build(&net);
        // Application on 10 hosts of two sites: heavy site-to-site traffic.
        let hosts = net.hosts();
        let injection: Vec<NodeId> = hosts
            .iter()
            .take(5)
            .chain(hosts.iter().skip(30).take(5))
            .copied()
            .collect();
        let pred = foreground_prediction(&net, &injection);
        let cfg = MapperConfig::new(5);
        let top = map_top(&net, &cfg);
        let place = map_place(&net, &tables, &pred, &cfg);

        let traffic_graph = predicted_traffic_graph(&net, &tables, &pred);
        let bal_top = massf_partition::quality::worst_balance(&traffic_graph, &top.part, 5);
        let bal_place = massf_partition::quality::worst_balance(&traffic_graph, &place.part, 5);
        assert!(
            bal_place < bal_top,
            "PLACE predicted-load balance {bal_place:.3} should beat TOP {bal_top:.3}"
        );
        // And it does so without abandoning cut quality entirely: the cut
        // must stay below the all-edges total.
        let cut_place = edge_cut(&traffic_graph, &place.part);
        assert!(cut_place < traffic_graph.total_edge_weight());
    }

    #[test]
    fn prediction_totals_scale_with_injection_points() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        let small = foreground_prediction(&net, &hosts[..4]);
        let large = foreground_prediction(&net, &hosts[..8]);
        let (_, node_small) = accumulate_predicted(&net, &tables, &small);
        let (_, node_large) = accumulate_predicted(&net, &tables, &large);
        let sum_small: f64 = node_small.iter().sum();
        let sum_large: f64 = node_large.iter().sum();
        assert!(sum_large > sum_small);
    }

    #[test]
    fn deterministic() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let pred = foreground_prediction(&net, &net.hosts()[..6]);
        let cfg = MapperConfig::new(3);
        assert_eq!(
            map_place(&net, &tables, &pred, &cfg),
            map_place(&net, &tables, &pred, &cfg)
        );
    }
}
