//! Emulation-phase clustering for PROFILE (§3.3).
//!
//! "The clustering algorithm first removes segments that have little
//! traffic. Then it gets a smooth load curve … The dominating node of
//! special point is the node with the maximal load. The change of
//! dominating node identifies a major load variation of the emulation
//! system. So we can split the whole emulation period at these odd points
//! and use each segment as a constraint to the graph partitioning
//! algorithm."

/// A half-open bucket range `[start, end)` forming one load phase.
pub type Segment = (usize, usize);

/// Clusters `[node][bucket]` loads into at most `max_segments` phases.
///
/// 1. Buckets whose total load is below `min_bucket_total` are idle; they
///    never trigger splits and attach to the preceding segment.
/// 2. Per-node curves are smoothed with a centered moving average of
///    `smooth` buckets.
/// 3. A new segment starts whenever the *dominating node* (argmax of the
///    smoothed loads) changes between consecutive active buckets.
/// 4. Adjacent segments are merged smallest-total-first until at most
///    `max_segments` remain.
///
/// Returns segments covering `[0, nbuckets)`; an all-idle input yields one
/// segment.
pub fn cluster_segments(
    node_loads: &[Vec<u64>],
    min_bucket_total: u64,
    smooth: usize,
    max_segments: usize,
) -> Vec<Segment> {
    let nbuckets = node_loads.iter().map(Vec::len).max().unwrap_or(0);
    if nbuckets == 0 {
        return vec![];
    }
    let max_segments = max_segments.max(1);
    let nnodes = node_loads.len();
    let get = |n: usize, b: usize| node_loads[n].get(b).copied().unwrap_or(0);

    // Bucket totals and activity mask.
    let totals: Vec<u64> = (0..nbuckets)
        .map(|b| (0..nnodes).map(|n| get(n, b)).sum())
        .collect();
    let active: Vec<bool> = totals.iter().map(|&t| t >= min_bucket_total).collect();

    // Smoothed dominating node per active bucket.
    let half = smooth.max(1) / 2;
    let dominating: Vec<Option<usize>> = (0..nbuckets)
        .map(|b| {
            if !active[b] {
                return None;
            }
            let lo = b.saturating_sub(half);
            let hi = (b + half).min(nbuckets - 1);
            (0..nnodes)
                .map(|n| (lo..=hi).map(|bb| get(n, bb)).sum::<u64>())
                .enumerate()
                .max_by_key(|&(n, s)| (s, std::cmp::Reverse(n)))
                .map(|(n, _)| n)
        })
        .collect();

    // Split at dominating-node changes between consecutive active buckets.
    let mut boundaries = vec![0usize];
    let mut last_dom: Option<usize> = None;
    for b in 0..nbuckets {
        if let Some(d) = dominating[b] {
            if let Some(prev) = last_dom {
                if prev != d {
                    boundaries.push(b);
                }
            }
            last_dom = Some(d);
        }
    }
    boundaries.push(nbuckets);
    let mut segments: Vec<Segment> = boundaries
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|&(a, b)| a < b)
        .collect();

    // Merge smallest adjacent pairs until within budget.
    let seg_total = |s: &Segment| -> u64 { (s.0..s.1).map(|b| totals[b]).sum() };
    while segments.len() > max_segments {
        let i = (0..segments.len() - 1)
            .min_by_key(|&i| seg_total(&segments[i]).saturating_add(seg_total(&segments[i + 1])))
            .expect("at least two segments");
        let merged = (segments[i].0, segments[i + 1].1);
        segments.splice(i..=i + 1, [merged]);
    }
    segments
}

/// Builds the multi-constraint vertex-weight matrix: one column per
/// segment, `weight[node][seg] = 1 + events of node in segment`. Flattened
/// row-major as the partitioner expects.
pub fn segment_vertex_weights(node_loads: &[Vec<u64>], segments: &[Segment]) -> Vec<i64> {
    let nnodes = node_loads.len();
    let ncon = segments.len().max(1);
    let mut out = vec![1i64; nnodes * ncon];
    for (n, row) in node_loads.iter().enumerate() {
        for (s, &(a, b)) in segments.iter().enumerate() {
            let sum: u64 = (a..b.min(row.len())).map(|bb| row[bb]).sum();
            out[n * ncon + s] = 1 + sum as i64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node 0 dominates buckets 0–3, node 1 dominates 6–9; 4–5 idle.
    fn two_phase() -> Vec<Vec<u64>> {
        vec![
            vec![100, 100, 100, 100, 1, 0, 5, 5, 5, 5],
            vec![5, 5, 5, 5, 0, 1, 100, 100, 100, 100],
        ]
    }

    #[test]
    fn detects_the_phase_change() {
        let segs = cluster_segments(&two_phase(), 10, 1, 8);
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs.last().unwrap().1, 10);
        // The split lands inside the idle region or at the second burst.
        let split = segs[0].1;
        assert!((4..=6).contains(&split), "split at {split}");
    }

    #[test]
    fn idle_buckets_do_not_split() {
        // Same dominator on both sides of an idle gap: one segment.
        let loads = vec![vec![50, 50, 0, 0, 50, 50], vec![1, 1, 0, 0, 1, 1]];
        let segs = cluster_segments(&loads, 5, 1, 8);
        assert_eq!(segs, vec![(0, 6)]);
    }

    #[test]
    fn merging_respects_budget() {
        // Alternating dominator every bucket: many raw segments.
        let a: Vec<u64> = (0..12).map(|b| if b % 2 == 0 { 100 } else { 1 }).collect();
        let b: Vec<u64> = (0..12).map(|b| if b % 2 == 1 { 100 } else { 1 }).collect();
        let segs = cluster_segments(&[a, b], 1, 1, 3);
        assert!(segs.len() <= 3);
        // Coverage is contiguous and complete.
        assert_eq!(segs[0].0, 0);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert_eq!(segs.last().unwrap().1, 12);
    }

    #[test]
    fn all_idle_is_one_segment() {
        let loads = vec![vec![0, 0, 0], vec![1, 0, 0]];
        let segs = cluster_segments(&loads, 10, 1, 4);
        assert_eq!(segs, vec![(0, 3)]);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_segments(&[], 1, 1, 4).is_empty());
    }

    #[test]
    fn weights_have_one_column_per_segment() {
        let loads = two_phase();
        let segs = cluster_segments(&loads, 10, 1, 8);
        let w = segment_vertex_weights(&loads, &segs);
        assert_eq!(w.len(), 2 * segs.len());
        // Node 0's first-segment weight reflects its burst.
        let ncon = segs.len();
        assert!(w[ncon - ncon] > 300, "node 0 seg 0: {w:?}");
        // Node 1 dominates the last segment.
        assert!(w[ncon + (ncon - 1)] > 300);
        // All weights have the +1 floor.
        assert!(w.iter().all(|&x| x >= 1));
    }

    #[test]
    fn smoothing_suppresses_single_bucket_flips() {
        // A one-bucket spike of node 1 inside node 0's phase should not
        // split when smoothed over 3 buckets.
        let loads = vec![vec![100, 100, 100, 100, 100], vec![1, 1, 160, 1, 1]];
        let raw = cluster_segments(&loads, 1, 1, 8);
        let smoothed = cluster_segments(&loads, 1, 3, 8);
        assert!(raw.len() >= 2, "unsmoothed sees the flip: {raw:?}");
        assert_eq!(smoothed.len(), 1, "smoothed ignores it: {smoothed:?}");
    }
}
