//! The end-to-end mapping study: choose an approach, produce a partition,
//! evaluate it by emulation (Figure 1's process, §2.3).

use crate::place::map_place_obs;
use crate::profile::map_profile_obs;
use crate::top::map_top_obs;
use crate::MapperConfig;
use massf_engine::netflow::FlowRecord;
use massf_engine::{run_sequential, CostModel, EmulationConfig, EmulationReport, SchedulerKind};
use massf_obs::Recorder;
use massf_partition::Partitioning;
use massf_routing::RoutingTables;
use massf_topology::Network;
use massf_traffic::{FlowSpec, PredictedFlow};

/// The three mapping approaches of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Topology-based (§3.1).
    Top,
    /// Application-placement-based (§3.2).
    Place,
    /// Profile-based (§3.3).
    Profile,
}

impl Approach {
    /// All three, in the paper's presentation order.
    pub const ALL: [Approach; 3] = [Approach::Top, Approach::Place, Approach::Profile];

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Top => "TOP",
            Approach::Place => "PLACE",
            Approach::Profile => "PROFILE",
        }
    }
}

/// One network + routing tables + mapper configuration, ready to map and
/// evaluate workloads.
pub struct MappingStudy {
    /// The emulated network.
    pub net: Network,
    /// Routing over it.
    pub tables: RoutingTables,
    /// Mapper configuration.
    pub cfg: MapperConfig,
    /// Virtual-time bucket width for fine-grained load series.
    pub counter_window_us: u64,
}

impl MappingStudy {
    /// Builds routing tables (threaded per `cfg.parallelism`) and wraps
    /// everything up.
    pub fn new(net: Network, cfg: MapperConfig) -> Self {
        let tables = RoutingTables::build_kind(&net, cfg.routing, cfg.parallelism);
        Self {
            net,
            tables,
            cfg,
            counter_window_us: 2_000_000,
        }
    }

    /// Produces the partition for `approach`.
    ///
    /// * `predicted` — placement-based traffic predictions (used by PLACE);
    /// * `flows` — the concrete schedule (used by PROFILE's profiling run).
    ///
    /// PROFILE runs a profiling emulation under the TOP partition with
    /// NetFlow enabled, then repartitions from the dumps — the full §3.3
    /// loop.
    pub fn map(
        &self,
        approach: Approach,
        predicted: &[PredictedFlow],
        flows: &[FlowSpec],
    ) -> Partitioning {
        self.map_obs(approach, predicted, flows, &mut Recorder::new())
    }

    /// [`MappingStudy::map`] with observability: pipeline stages record
    /// `mapping/*` spans, partitioner restart batches, and (for PROFILE)
    /// phase-detection telemetry on `rec`. Recording never changes the
    /// partition produced.
    pub fn map_obs(
        &self,
        approach: Approach,
        predicted: &[PredictedFlow],
        flows: &[FlowSpec],
        rec: &mut Recorder,
    ) -> Partitioning {
        match approach {
            Approach::Top => map_top_obs(&self.net, &self.cfg, rec),
            Approach::Place => map_place_obs(&self.net, &self.tables, predicted, &self.cfg, rec),
            Approach::Profile => {
                let initial = map_top_obs(&self.net, &self.cfg, rec);
                let span = rec.start();
                let records = self.profile_records(flows, &initial);
                rec.finish("mapping/profile/profiling_run", span);
                rec.add_counter("profile.netflow_records", records.len() as u64);
                map_profile_obs(&self.net, &self.tables, &records, &self.cfg, rec)
            }
        }
    }

    /// Runs the profiling emulation (NetFlow on) under `initial` and
    /// returns the merged dumps.
    pub fn profile_records(&self, flows: &[FlowSpec], initial: &Partitioning) -> Vec<FlowRecord> {
        let cfg = EmulationConfig {
            partition: initial.part.clone(),
            nengines: initial.nparts,
            counter_window_us: self.counter_window_us,
            netflow: true,
            cost: CostModel::default(),
            engine_speeds: self.cfg.engine_capacities.clone(),
            scheduler: SchedulerKind::default(),
        };
        run_sequential(&self.net, &self.tables, flows, &cfg).netflow
    }

    /// Evaluates a partition by emulating `flows` under it.
    pub fn evaluate(
        &self,
        partition: &Partitioning,
        flows: &[FlowSpec],
        cost: CostModel,
    ) -> EmulationReport {
        let cfg = EmulationConfig {
            partition: partition.part.clone(),
            nengines: partition.nparts,
            counter_window_us: self.counter_window_us,
            netflow: false,
            cost,
            engine_speeds: self.cfg.engine_capacities.clone(),
            scheduler: SchedulerKind::default(),
        };
        run_sequential(&self.net, &self.tables, flows, &cfg)
    }

    /// Replays `flows` "as fast as possible" (compressed schedule, no
    /// real-time pacing) under a partition — the paper's isolated network
    /// emulation time (§4.1.1, Figures 9/10).
    pub fn replay(&self, partition: &Partitioning, flows: &[FlowSpec]) -> EmulationReport {
        let compressed = massf_engine::trace::compress_for_replay(flows);
        self.evaluate(partition, &compressed, CostModel::replay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::foreground_prediction;
    use massf_metrics::load_imbalance;
    use massf_topology::campus::campus;
    use massf_traffic::scalapack::{self, ScalapackConfig};

    fn study() -> MappingStudy {
        MappingStudy::new(campus(), MapperConfig::new(3))
    }

    fn workload(study: &MappingStudy) -> (Vec<FlowSpec>, Vec<PredictedFlow>) {
        let hosts = study.net.hosts();
        let placement: Vec<_> = hosts.iter().step_by(4).take(10).copied().collect();
        let cfg = ScalapackConfig {
            matrix_n: 600,
            ..Default::default()
        };
        let flows = scalapack::flows(&cfg, &placement);
        let predicted = foreground_prediction(&study.net, &placement);
        (flows, predicted)
    }

    #[test]
    fn all_approaches_yield_valid_partitions() {
        let s = study();
        let (flows, predicted) = workload(&s);
        for a in Approach::ALL {
            let p = s.map(a, &predicted, &flows);
            assert_eq!(p.nparts, 3, "{}", a.label());
            assert!(p.part_sizes().iter().all(|&x| x > 0), "{}", a.label());
        }
    }

    #[test]
    fn profile_improves_or_matches_top_imbalance() {
        let s = study();
        let (flows, predicted) = workload(&s);
        let top = s.map(Approach::Top, &predicted, &flows);
        let profile = s.map(Approach::Profile, &predicted, &flows);
        let r_top = s.evaluate(&top, &flows, CostModel::default());
        let r_prof = s.evaluate(&profile, &flows, CostModel::default());
        let i_top = load_imbalance(&r_top.engine_events);
        let i_prof = load_imbalance(&r_prof.engine_events);
        assert!(
            i_prof <= i_top * 1.10 + 0.02,
            "PROFILE {i_prof:.3} should not be clearly worse than TOP {i_top:.3}"
        );
    }

    #[test]
    fn replay_is_faster_than_live() {
        let s = study();
        let (flows, predicted) = workload(&s);
        let p = s.map(Approach::Top, &predicted, &flows);
        let live = s.evaluate(&p, &flows, CostModel::live_application());
        let replay = s.replay(&p, &flows);
        assert!(
            replay.emulation_time_s() < live.emulation_time_s(),
            "replay {} vs live {}",
            replay.emulation_time_s(),
            live.emulation_time_s()
        );
        assert_eq!(replay.delivered, live.delivered, "same packets either way");
    }

    #[test]
    fn profiling_run_produces_records() {
        let s = study();
        let (flows, _) = workload(&s);
        let initial = s.map(Approach::Top, &[], &flows);
        let records = s.profile_records(&flows, &initial);
        assert!(!records.is_empty());
        let total: u64 = records.iter().map(|r| r.packets).sum();
        assert!(total > 1000, "profiling saw {total} router-packets");
    }

    #[test]
    fn map_obs_records_telemetry_without_changing_results() {
        let s = study();
        let (flows, predicted) = workload(&s);
        let mut rec = Recorder::new();
        let p = s.map_obs(Approach::Profile, &predicted, &flows, &mut rec);
        assert_eq!(p, s.map(Approach::Profile, &predicted, &flows));

        let stages: Vec<&str> = rec.restarts().iter().map(|b| b.stage.as_str()).collect();
        assert!(stages.contains(&"top"), "{stages:?}");
        assert!(stages.contains(&"profile/latency"), "{stages:?}");
        assert!(stages.contains(&"profile/combined"), "{stages:?}");
        for batch in rec.restarts() {
            assert!((batch.winner as usize) < batch.outcomes.len().max(1));
        }
        let telemetry = rec.profile().expect("PROFILE sets phase telemetry");
        assert!(telemetry.nbuckets > 0);
        assert!(!telemetry.phases.is_empty());
        assert_eq!(
            telemetry.constraint_totals.len(),
            telemetry.constraints as usize
        );
        assert!(rec
            .spans()
            .iter()
            .any(|sp| sp.name == "mapping/profile/profiling_run"));
        assert!(rec.counters().contains_key("profile.netflow_records"));
    }

    #[test]
    fn approach_labels() {
        assert_eq!(Approach::Top.label(), "TOP");
        assert_eq!(Approach::Place.label(), "PLACE");
        assert_eq!(Approach::Profile.label(), "PROFILE");
    }
}
