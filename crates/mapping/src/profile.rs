//! The profile-based mapping approach — PROFILE (§3.3).
//!
//! An initial emulation run (under any partition, typically TOP's) records
//! NetFlow dumps on every router. From them we build:
//!
//! * measured per-link traffic (in packets) — the traffic objective,
//!   combined with the latency objective per §2.3;
//! * per-node load curves over time, clustered into phases (§3.3); each
//!   phase contributes one multi-constraint vertex-weight column so the
//!   partitioner balances *every* phase, not just the average.

use crate::segments::{cluster_segments, segment_vertex_weights};
use crate::top::map_top_obs;
use crate::weights::{
    append_memory_constraint, latency_graph, measured_traffic_graph_with, node_time_loads,
    with_vertex_weights,
};
use crate::MapperConfig;
use massf_engine::netflow::FlowRecord;
use massf_obs::{PhaseInfo, ProfileTelemetry, Recorder};
use massf_partition::multiobjective::combine_and_partition_obs;
use massf_partition::Partitioning;
use massf_routing::RoutingTables;
use massf_topology::Network;

/// Smoothing window (buckets) for the dominating-node curve.
const SMOOTH_BUCKETS: usize = 3;

/// Number of time buckets the profile is digested into before clustering.
pub const PROFILE_BUCKETS: u64 = 24;

/// Maps the network using NetFlow records from a profiling run.
///
/// Falls back to [`crate::top::map_top`] when the profile is empty
/// (nothing was recorded — e.g. a pure-compute workload).
pub fn map_profile(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
    cfg: &MapperConfig,
) -> Partitioning {
    map_profile_obs(net, tables, records, cfg, &mut Recorder::new())
}

/// [`map_profile`] with observability: records `mapping/profile/*` spans,
/// the `profile/{latency,bandwidth,combined}` restart batches, and the
/// phase-detection telemetry ([`ProfileTelemetry`]: bucket layout, phase
/// boundaries with their dominating nodes, and the per-constraint column
/// totals handed to the partitioner) on `rec`.
pub fn map_profile_obs(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
    cfg: &MapperConfig,
    rec: &mut Recorder,
) -> Partitioning {
    if records.is_empty() {
        return map_top_obs(net, cfg, rec);
    }
    let horizon = records
        .iter()
        .map(|r| r.last_us)
        .max()
        .expect("records non-empty");
    let bucket_us = (horizon / PROFILE_BUCKETS).max(1);

    let span = rec.start();
    let loads = node_time_loads(net, records, bucket_us);
    let segments = cluster_segments(
        &loads,
        cfg.min_bucket_events,
        SMOOTH_BUCKETS,
        cfg.max_segments,
    );
    rec.finish("mapping/profile/segments", span);
    let span = rec.start();
    // Constraint 0 is always the *total* measured load — the quantity the
    // paper's imbalance metric scores. Each detected phase adds a column so
    // stage-local imbalance is bounded too (§3.3); with a single phase the
    // segment column would duplicate the total, so it is dropped.
    let (mut ncon, mut vwgt) = {
        let nvtxs = net.node_count();
        let totals: Vec<i64> = loads
            .iter()
            .map(|row| 1 + row.iter().sum::<u64>() as i64)
            .collect();
        if segments.len() <= 1 {
            (1, totals)
        } else {
            let seg_w = segment_vertex_weights(&loads, &segments);
            let ncon = 1 + segments.len();
            let mut w = Vec::with_capacity(nvtxs * ncon);
            for v in 0..nvtxs {
                w.push(totals[v]);
                w.extend_from_slice(&seg_w[v * segments.len()..(v + 1) * segments.len()]);
            }
            (ncon, w)
        }
    };
    if cfg.include_memory {
        let appended = append_memory_constraint(net, ncon, &vwgt);
        ncon = appended.0;
        vwgt = appended.1;
    }
    rec.set_profile(profile_telemetry(bucket_us, &loads, &segments, ncon, &vwgt));
    rec.finish("mapping/profile/constraints", span);

    let span = rec.start();
    let traffic = measured_traffic_graph_with(net, tables, records, cfg.parallelism);
    let latency = with_vertex_weights(&latency_graph(net), ncon, vwgt.clone());
    let traffic = with_vertex_weights(&traffic, ncon, vwgt);
    rec.finish("mapping/profile/traffic_graph", span);

    // Keep the total-load constraint tight but give the phase (and memory)
    // columns extra slack: phases are noisy estimates, and over-constraining
    // them forces low-latency cuts that hurt more than phase skew does.
    let mut pcfg = cfg.partition_config();
    let mut ubs = vec![cfg.ubfactor; ncon];
    for ub in ubs.iter_mut().skip(1) {
        *ub = cfg.ubfactor + 0.35;
    }
    pcfg.ub_vec = Some(ubs);

    combine_and_partition_obs(
        &latency,
        &traffic,
        cfg.latency_priority,
        &pcfg,
        "profile",
        rec,
    )
    .partitioning
}

/// Digests the load curves and constraint columns into the telemetry the
/// run report carries: per-phase dominating nodes (argmax of raw load over
/// the phase's buckets; `None` for all-idle phases) and the column sums of
/// the vertex-weight matrix handed to the partitioner.
fn profile_telemetry(
    bucket_us: u64,
    loads: &[Vec<u64>],
    segments: &[(usize, usize)],
    ncon: usize,
    vwgt: &[i64],
) -> ProfileTelemetry {
    let nbuckets = loads.first().map(Vec::len).unwrap_or(0);
    let phases = segments
        .iter()
        .map(|&(start, end)| {
            let mut dominating = None;
            let mut best = 0u64;
            let mut events = 0u64;
            for (node, row) in loads.iter().enumerate() {
                let load: u64 = row[start..end.min(row.len())].iter().sum();
                events += load;
                if load > best {
                    best = load;
                    dominating = Some(node as u64);
                }
            }
            PhaseInfo {
                start_bucket: start as u64,
                end_bucket: end as u64,
                dominating_node: dominating,
                events,
            }
        })
        .collect();
    let mut constraint_totals = vec![0i64; ncon];
    for (i, &w) in vwgt.iter().enumerate() {
        constraint_totals[i % ncon] += w;
    }
    ProfileTelemetry {
        bucket_us,
        nbuckets: nbuckets as u64,
        constraints: ncon as u64,
        constraint_totals,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::campus::campus;
    use massf_topology::NodeId;

    fn record(
        router: NodeId,
        flow: u32,
        src: NodeId,
        dst: NodeId,
        packets: u64,
        t0: u64,
        t1: u64,
    ) -> FlowRecord {
        FlowRecord {
            router,
            flow,
            src,
            dst,
            packets,
            bytes: packets * 1500,
            first_us: t0,
            last_us: t1,
        }
    }

    #[test]
    fn empty_profile_falls_back_to_top() {
        let net = campus();
        let cfg = MapperConfig::new(3);
        let tables = RoutingTables::build(&net);
        let p = map_profile(&net, &tables, &[], &cfg);
        assert_eq!(p, crate::top::map_top(&net, &cfg));
    }

    #[test]
    fn profile_partition_is_valid() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        // Two flows through real routers of the campus topology.
        let r0 = net.routers()[5];
        let records = vec![
            record(r0, 0, hosts[0], hosts[20], 500, 0, 1_000_000),
            record(r0, 1, hosts[1], hosts[30], 300, 2_000_000, 3_000_000),
        ];
        let p = map_profile(&net, &tables, &records, &MapperConfig::new(3));
        assert_eq!(p.nparts, 3);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn hot_pair_is_not_split_when_balance_allows() {
        // Heavy measured traffic between two hosts behind one router, plus
        // enough background load elsewhere that collocating the hot subtree
        // on one engine is balance-feasible. PROFILE must then keep the hot
        // flow inside one partition ("it attempts to limit a large traffic
        // flow to small number of partitions", §5).
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        let (a, b) = (hosts[0], hosts[1]); // attached to the same dept router
        let path = tables.path(a, b).unwrap();
        assert_eq!(path.len(), 3, "expected a-router-b, got {path:?}");
        let router = path[1];
        let mut records = vec![record(router, 0, a, b, 3_000, 0, 5_000_000)];
        // Background: moderate flows between far-apart hosts, observed at
        // their routers, so total load dwarfs the hot pair.
        for (i, w) in [
            (10usize, 35usize),
            (12, 30),
            (14, 25),
            (16, 38),
            (20, 28),
            (22, 33),
        ]
        .iter()
        .enumerate()
        {
            let (src, dst) = (hosts[w.0], hosts[w.1]);
            let p = tables.path(src, dst).unwrap();
            for &n in &p[1..p.len() - 1] {
                records.push(record(n, i as u32 + 1, src, dst, 2_000, 0, 5_000_000));
            }
        }
        let p = map_profile(&net, &tables, &records, &MapperConfig::new(3));
        assert_eq!(p.part[a as usize], p.part[b as usize], "hot pair split");
        assert_eq!(
            p.part[a as usize], p.part[router as usize],
            "host split from router"
        );
    }

    #[test]
    fn profile_cuts_less_measured_traffic_than_top() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        // Irregular measured load across several subtrees.
        let mut records = Vec::new();
        for (i, w) in [
            (0usize, 39usize),
            (3, 20),
            (7, 31),
            (11, 15),
            (18, 36),
            (25, 5),
        ]
        .iter()
        .enumerate()
        {
            let (src, dst) = (hosts[w.0], hosts[w.1]);
            let p = tables.path(src, dst).unwrap();
            let pkts = 1_000 + 700 * i as u64;
            for &n in &p[1..p.len() - 1] {
                records.push(record(n, i as u32, src, dst, pkts, 0, 4_000_000));
            }
        }
        let cfg = MapperConfig::new(3);
        let top = crate::top::map_top(&net, &cfg);
        let prof = map_profile(&net, &tables, &records, &cfg);
        let g = crate::weights::measured_traffic_graph(&net, &tables, &records);
        let cut_top = massf_partition::quality::edge_cut(&g, &top.part);
        let cut_prof = massf_partition::quality::edge_cut(&g, &prof.part);
        assert!(
            cut_prof <= cut_top,
            "PROFILE measured-traffic cut {cut_prof} vs TOP {cut_top}"
        );
    }

    #[test]
    fn deterministic() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        let records = vec![record(net.routers()[2], 0, hosts[0], hosts[10], 50, 0, 100)];
        let cfg = MapperConfig::new(3);
        assert_eq!(
            map_profile(&net, &tables, &records, &cfg),
            map_profile(&net, &tables, &records, &cfg)
        );
    }

    #[test]
    fn memory_constraint_composes_with_segments() {
        let net = campus();
        let tables = RoutingTables::build(&net);
        let hosts = net.hosts();
        let records = vec![
            record(net.routers()[2], 0, hosts[0], hosts[10], 500, 0, 1_000_000),
            record(
                net.routers()[8],
                1,
                hosts[12],
                hosts[30],
                400,
                3_000_000,
                4_000_000,
            ),
        ];
        let cfg = MapperConfig::new(3).with_memory_constraint(true);
        let p = map_profile(&net, &tables, &records, &cfg);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }
}
