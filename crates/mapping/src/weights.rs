//! Construction of the partitioner's weighted input graphs (§2.2).
//!
//! All graphs produced here share one structure — vertex `i` is network
//! node `i`, one edge per link — so the §2.3 multi-objective combination
//! can mix their edge weights. They differ only in weights:
//!
//! * **latency view** — edge weight `K / latency`: the partitioner
//!   minimizes cut weight, so cheap-to-cut edges are the high-latency ones,
//!   which *maximizes* cut latency and hence conservative lookahead;
//! * **predicted-traffic view** (PLACE) — edge weight ∝ predicted Mbps
//!   crossing the link, vertex weight ∝ predicted traffic through the node;
//! * **measured-traffic view** (PROFILE) — the same quantities from
//!   NetFlow records, in packets ("we use the number of packets in a flow,
//!   since the real load in the emulator depends on the number of packets
//!   it processes", §3.3).

use massf_engine::netflow::FlowRecord;
use massf_graph::{CsrGraph, GraphBuilder, Weight};
use massf_par::{par_indexed_map, Parallelism};
use massf_routing::RoutingTables;
use massf_topology::{Network, NodeId, NodeKind};
use massf_traffic::{FlowSpec, PredictedFlow};
use std::collections::BTreeMap;

/// Flows per work block when fanning accumulation over threads.
///
/// Accumulators always process flows in fixed blocks of this size and
/// merge the per-block partial sums in ascending block order, so the
/// floating-point reduction tree — and therefore the bit pattern of every
/// `f64` total — is a function of the input alone, never of the thread
/// count or scheduling.
const FLOW_BLOCK: usize = 4096;

/// Numerator for the latency objective: `w = LATENCY_SCALE / latency_us`.
pub const LATENCY_SCALE: f64 = 1_000_000.0;

/// Fixed-point multiplier when quantizing Mbps to integer edge weights.
pub const MBPS_SCALE: f64 = 16.0;

/// Builds the shared graph skeleton with the supplied weight functions.
fn build_graph(
    net: &Network,
    ncon: usize,
    vertex_weight: impl Fn(NodeId) -> Vec<Weight>,
    edge_weight: impl Fn(usize) -> Weight,
) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(ncon, net.node_count(), net.link_count());
    for n in net.nodes() {
        let w = vertex_weight(n.id);
        assert_eq!(w.len(), ncon);
        b.add_vertex(&w);
    }
    for (i, l) in net.links().iter().enumerate() {
        b.add_edge(l.a, l.b, edge_weight(i))
            .expect("network links are valid edges");
    }
    b.build().expect("network graph valid")
}

/// The latency objective's edge weight for a link of `latency_us`.
#[inline]
pub fn latency_weight(latency_us: u64) -> Weight {
    ((LATENCY_SCALE / latency_us as f64).round() as Weight).max(1)
}

/// TOP's input graph: vertex weight = total incident bandwidth (Mbps,
/// rounded, ≥ 1); edge weight = the latency objective (§3.1).
pub fn latency_graph(net: &Network) -> CsrGraph {
    build_graph(
        net,
        1,
        |n| vec![(net.total_bandwidth(n).round() as Weight).max(1)],
        |i| latency_weight(net.links()[i].latency_us),
    )
}

/// Fans `items` over threads in fixed [`FLOW_BLOCK`]-sized blocks; each
/// block produces partial `(per_link, per_node)` vectors via `accumulate`
/// and the partials are merged in ascending block order with `merge`.
/// Serial and parallel runs share the identical blocked reduction
/// structure, so results are bit-identical at every thread count.
fn blocked_accumulate<T, L, N>(
    par: Parallelism,
    items: &[T],
    nlinks: usize,
    nnodes: usize,
    accumulate: impl Fn(&T, &mut [L], &mut [N]) + Sync,
    merge: impl Fn(&mut L, &L) + Copy,
    merge_node: impl Fn(&mut N, &N) + Copy,
) -> (Vec<L>, Vec<N>)
where
    T: Sync,
    L: Clone + Default + Send + Sync,
    N: Clone + Default + Send + Sync,
{
    let nblocks = items.len().div_ceil(FLOW_BLOCK).max(1);
    let partials = par_indexed_map(par, nblocks, |b| {
        let mut link = vec![L::default(); nlinks];
        let mut node = vec![N::default(); nnodes];
        let lo = b * FLOW_BLOCK;
        let hi = items.len().min(lo + FLOW_BLOCK);
        for item in &items[lo..hi] {
            accumulate(item, &mut link, &mut node);
        }
        (link, node)
    });
    let mut per_link = vec![L::default(); nlinks];
    let mut per_node = vec![N::default(); nnodes];
    for (link, node) in partials {
        for (acc, p) in per_link.iter_mut().zip(&link) {
            merge(acc, p);
        }
        for (acc, p) in per_node.iter_mut().zip(&node) {
            merge_node(acc, p);
        }
    }
    (per_link, per_node)
}

/// Routes every predicted flow and accumulates per-link and per-node Mbps.
/// Returns `(per_link, per_node)`; a flow contributes to every node on its
/// path, endpoints included. Single-threaded reference path of
/// [`accumulate_predicted_with`].
pub fn accumulate_predicted(
    net: &Network,
    tables: &RoutingTables,
    flows: &[PredictedFlow],
) -> (Vec<f64>, Vec<f64>) {
    accumulate_predicted_with(net, tables, flows, Parallelism::serial())
}

/// [`accumulate_predicted`] fanned over up to `par` threads. The blocked
/// in-order merge keeps every `f64` sum bit-identical across thread
/// counts.
pub fn accumulate_predicted_with(
    net: &Network,
    tables: &RoutingTables,
    flows: &[PredictedFlow],
    par: Parallelism,
) -> (Vec<f64>, Vec<f64>) {
    blocked_accumulate(
        par,
        flows,
        net.link_count(),
        net.node_count(),
        |f: &PredictedFlow, per_link: &mut [f64], per_node: &mut [f64]| {
            if f.src == f.dst {
                return;
            }
            tables.for_each_hop(f.src, f.dst, |n, link| {
                per_node[n as usize] += f.bandwidth_mbps;
                if let Some(l) = link {
                    per_link[l.0 as usize] += f.bandwidth_mbps;
                }
            });
        },
        |a, b| *a += *b,
        |a, b| *a += *b,
    )
}

/// PLACE's traffic view: edge weight ∝ predicted Mbps on the link, vertex
/// weight ∝ predicted Mbps through the node (both quantized, with a floor
/// of 1 so idle regions remain partitionable).
pub fn predicted_traffic_graph(
    net: &Network,
    tables: &RoutingTables,
    flows: &[PredictedFlow],
) -> CsrGraph {
    predicted_traffic_graph_with(net, tables, flows, Parallelism::serial())
}

/// [`predicted_traffic_graph`] with threaded accumulation.
pub fn predicted_traffic_graph_with(
    net: &Network,
    tables: &RoutingTables,
    flows: &[PredictedFlow],
    par: Parallelism,
) -> CsrGraph {
    let (per_link, per_node) = accumulate_predicted_with(net, tables, flows, par);
    build_graph(
        net,
        1,
        |n| vec![quantize(per_node[n as usize])],
        |i| quantize(per_link[i]),
    )
}

/// One NetFlow flow reduced across every router that observed it: the
/// packet count is the maximum seen at any single router (the flow's true
/// count, robust to partial paths) and the activity window spans all
/// sightings. This single aggregation pass feeds both [`flow_totals`] and
/// [`node_time_loads`], which previously each re-scanned the records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowAggregate {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Packets (max over routers).
    pub packets: u64,
    /// Earliest sighting (µs).
    pub first_us: u64,
    /// Latest sighting (µs).
    pub last_us: u64,
}

/// Groups NetFlow records by flow id into per-flow aggregates, sorted
/// deterministically (by `(src, dst, packets, first_us, last_us)`).
pub fn aggregate_flows(records: &[FlowRecord]) -> Vec<FlowAggregate> {
    // BTreeMap: into_values() below then yields flow-id order before the
    // final sort, so ties in the aggregate ordering cannot be broken by
    // hasher order (srclint SA001).
    let mut per_flow: BTreeMap<u32, FlowAggregate> = BTreeMap::new();
    for r in records {
        let e = per_flow.entry(r.flow).or_insert(FlowAggregate {
            src: r.src,
            dst: r.dst,
            packets: 0,
            first_us: r.first_us,
            last_us: r.last_us,
        });
        e.packets = e.packets.max(r.packets);
        e.first_us = e.first_us.min(r.first_us);
        e.last_us = e.last_us.max(r.last_us);
    }
    let mut v: Vec<_> = per_flow.into_values().collect();
    v.sort_unstable();
    v
}

/// Groups NetFlow records by flow: `(src, dst, packets)` where `packets`
/// is the maximum seen at any single router (the flow's true packet count,
/// robust to partial paths).
pub fn flow_totals(records: &[FlowRecord]) -> Vec<(NodeId, NodeId, u64)> {
    aggregate_flows(records)
        .into_iter()
        .map(|a| (a.src, a.dst, a.packets))
        .collect()
}

/// Accumulates measured per-link and per-node *packet* counts from NetFlow
/// dumps. Router loads come straight from the records; host endpoint loads
/// and link crossings are reconstructed by routing each flow.
/// Single-threaded reference path of [`accumulate_measured_with`].
pub fn accumulate_measured(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
) -> (Vec<u64>, Vec<u64>) {
    accumulate_measured_with(net, tables, records, Parallelism::serial())
}

/// [`accumulate_measured`] fanned over up to `par` threads (the per-flow
/// routing pass is the expensive part; the raw router-load scan stays
/// serial). Counts are integers, but the same blocked in-order merge is
/// used so the code path mirrors the predicted accumulator exactly.
pub fn accumulate_measured_with(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
    par: Parallelism,
) -> (Vec<u64>, Vec<u64>) {
    let aggregates = aggregate_flows(records);
    let (per_link, mut per_node) = blocked_accumulate(
        par,
        &aggregates,
        net.link_count(),
        net.node_count(),
        |a: &FlowAggregate, per_link: &mut [u64], per_node: &mut [u64]| {
            // Endpoint hosts process one event per packet (inject / deliver).
            per_node[a.src as usize] += a.packets;
            per_node[a.dst as usize] += a.packets;
            if a.src != a.dst {
                tables.for_each_hop(a.src, a.dst, |_, link| {
                    if let Some(l) = link {
                        per_link[l.0 as usize] += a.packets;
                    }
                });
            }
        },
        |acc, p| *acc += *p,
        |acc, p| *acc += *p,
    );
    for r in records {
        per_node[r.router as usize] += r.packets;
    }
    (per_link, per_node)
}

/// PROFILE's traffic view from NetFlow dumps: weights in packets.
pub fn measured_traffic_graph(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
) -> CsrGraph {
    measured_traffic_graph_with(net, tables, records, Parallelism::serial())
}

/// [`measured_traffic_graph`] with threaded accumulation.
pub fn measured_traffic_graph_with(
    net: &Network,
    tables: &RoutingTables,
    records: &[FlowRecord],
    par: Parallelism,
) -> CsrGraph {
    let (per_link, per_node) = accumulate_measured_with(net, tables, records, par);
    build_graph(
        net,
        1,
        |n| vec![(per_node[n as usize] as Weight).max(1)],
        |i| (per_link[i] as Weight).max(1),
    )
}

/// Per-node load over virtual-time buckets, `[node][bucket]`, spreading
/// each record's packets uniformly over its observed duration. Feeds the
/// §3.3 phase clustering.
pub fn node_time_loads(net: &Network, records: &[FlowRecord], bucket_us: u64) -> Vec<Vec<u64>> {
    let bucket_us = bucket_us.max(1);
    let nbuckets = records
        .iter()
        .map(|r| (r.last_us / bucket_us) as usize + 1)
        .max()
        .unwrap_or(0);
    let mut loads = vec![vec![0u64; nbuckets]; net.node_count()];
    let mut spread = |node: NodeId, packets: u64, first: u64, last: u64| {
        let b0 = (first / bucket_us) as usize;
        let b1 = (last / bucket_us) as usize;
        let n = (b1 - b0 + 1) as u64;
        for b in b0..=b1 {
            loads[node as usize][b] += packets / n;
        }
        loads[node as usize][b0] += packets % n;
    };
    for r in records {
        spread(r.router, r.packets, r.first_us, r.last_us);
    }
    // Endpoint hosts mirror their flows' activity windows.
    for a in aggregate_flows(records) {
        if net.node(a.src).kind == NodeKind::Host {
            spread(a.src, a.packets, a.first_us, a.last_us);
        }
        if net.node(a.dst).kind == NodeKind::Host {
            spread(a.dst, a.packets, a.first_us, a.last_us);
        }
    }
    loads
}

/// Static per-node load series `[node][bucket]` predicted from a flow
/// schedule alone: each flow's packets are spread uniformly over its
/// injection window and charged to both endpoints (injection at `src`,
/// delivery at `dst`). The schedule-time analogue of [`node_time_loads`] —
/// what PROFILE's phase detection would see before any emulation runs,
/// minus router transit load (which needs routing). Flows with zero
/// packets or out-of-range endpoints are skipped; the preflight linter
/// reports those separately.
pub fn flow_node_loads(net: &Network, flows: &[FlowSpec], bucket_us: u64) -> Vec<Vec<u64>> {
    let bucket_us = bucket_us.max(1);
    let n = net.node_count();
    let valid = |f: &&FlowSpec| f.packets > 0 && (f.src as usize) < n && (f.dst as usize) < n;
    let nbuckets = flows
        .iter()
        .filter(valid)
        .map(|f| (f.end_us() / bucket_us) as usize + 1)
        .max()
        .unwrap_or(0);
    let mut loads = vec![vec![0u64; nbuckets]; n];
    for f in flows.iter().filter(valid) {
        let b0 = (f.start_us / bucket_us) as usize;
        let b1 = (f.end_us() / bucket_us) as usize;
        let nb = (b1 - b0 + 1) as u64;
        for node in [f.src, f.dst] {
            let row = &mut loads[node as usize];
            for b in b0..=b1 {
                row[b] += f.packets / nb;
            }
            row[b0] += f.packets % nb;
        }
    }
    loads
}

/// Overlays new vertex weights (possibly multi-constraint) onto a weighted
/// view, keeping its edge weights.
pub fn with_vertex_weights(graph: &CsrGraph, ncon: usize, vwgt: Vec<Weight>) -> CsrGraph {
    graph
        .with_vertex_weights(ncon, vwgt)
        .expect("weight overlay arity matches")
}

/// Appends the memory-model weights (§5, `m = 10 + x²`) as an extra
/// constraint column to a flattened weight matrix.
pub fn append_memory_constraint(
    net: &Network,
    ncon: usize,
    vwgt: &[Weight],
) -> (usize, Vec<Weight>) {
    let mem = massf_routing::memory::memory_weights(net);
    let n = net.node_count();
    assert_eq!(vwgt.len(), n * ncon);
    let mut out = Vec::with_capacity(n * (ncon + 1));
    for v in 0..n {
        out.extend_from_slice(&vwgt[v * ncon..(v + 1) * ncon]);
        out.push(mem[v]);
    }
    (ncon + 1, out)
}

fn quantize(mbps: f64) -> Weight {
    ((mbps * MBPS_SCALE).round() as Weight).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_topology::campus::campus;
    use massf_topology::Network;

    fn line() -> Network {
        let mut net = Network::new();
        let h0 = net.add_host("h0", 0);
        let r0 = net.add_router("r0", 0);
        let r1 = net.add_router("r1", 0);
        let h1 = net.add_host("h1", 0);
        net.add_link(h0, r0, 100.0, 10);
        net.add_link(r0, r1, 1000.0, 5000);
        net.add_link(r1, h1, 100.0, 10);
        net
    }

    #[test]
    fn latency_graph_inverts_latency() {
        let net = line();
        let g = latency_graph(&net);
        // Host link: 1e6/10 = 100000; core link: 1e6/5000 = 200.
        assert_eq!(g.edge_weight_between(0, 1), Some(100_000));
        assert_eq!(g.edge_weight_between(1, 2), Some(200));
        // Cutting the high-latency core link is cheapest — by design.
    }

    #[test]
    fn latency_graph_vertex_weight_is_bandwidth() {
        let net = line();
        let g = latency_graph(&net);
        assert_eq!(g.vertex_weight0(1), 1100); // 100 + 1000
        assert_eq!(g.vertex_weight0(0), 100);
    }

    #[test]
    fn predicted_accumulation_routes_flows() {
        let net = line();
        let tables = RoutingTables::build(&net);
        let flows = vec![
            PredictedFlow {
                src: 0,
                dst: 3,
                bandwidth_mbps: 10.0,
            },
            PredictedFlow {
                src: 3,
                dst: 0,
                bandwidth_mbps: 2.5,
            },
        ];
        let (per_link, per_node) = accumulate_predicted(&net, &tables, &flows);
        for l in 0..3 {
            assert!((per_link[l] - 12.5).abs() < 1e-9, "link {l}");
        }
        for n in 0..4 {
            assert!((per_node[n] - 12.5).abs() < 1e-9, "node {n}");
        }
    }

    #[test]
    fn predicted_graph_quantizes_with_floor() {
        let net = line();
        let tables = RoutingTables::build(&net);
        let g = predicted_traffic_graph(&net, &tables, &[]);
        // No traffic: all weights floor at 1.
        assert_eq!(g.edge_weight_between(0, 1), Some(1));
        assert_eq!(g.vertex_weight0(2), 1);
        // Structure matches the latency view for multi-objective mixing.
        assert_eq!(g.adjncy(), latency_graph(&net).adjncy());
    }

    #[test]
    fn measured_accumulation_uses_max_router_count() {
        let net = line();
        let tables = RoutingTables::build(&net);
        let rec = |router: NodeId, flow: u32, packets: u64| FlowRecord {
            router,
            flow,
            src: 0,
            dst: 3,
            packets,
            bytes: packets * 1500,
            first_us: 0,
            last_us: 1000,
        };
        // Flow 0 seen at both routers (10 packets each).
        let records = vec![rec(1, 0, 10), rec(2, 0, 10)];
        let (per_link, per_node) = accumulate_measured(&net, &tables, &records);
        assert_eq!(per_node[1], 10);
        assert_eq!(per_node[2], 10);
        assert_eq!(per_node[0], 10, "source host endpoint load");
        assert_eq!(per_node[3], 10, "destination host endpoint load");
        assert_eq!(per_link, vec![10, 10, 10]);
    }

    #[test]
    fn node_time_loads_spread_over_duration() {
        let net = line();
        let records = vec![FlowRecord {
            router: 1,
            flow: 0,
            src: 0,
            dst: 3,
            packets: 10,
            bytes: 0,
            first_us: 0,
            last_us: 4999,
        }];
        let loads = node_time_loads(&net, &records, 1000);
        assert_eq!(loads[1].len(), 5);
        assert_eq!(loads[1].iter().sum::<u64>(), 10);
        assert!(loads[1].iter().all(|&x| x >= 2), "roughly uniform spread");
        // Host endpoints mirrored.
        assert_eq!(loads[0].iter().sum::<u64>(), 10);
        assert_eq!(loads[3].iter().sum::<u64>(), 10);
        // The untouched router has zeros.
        assert_eq!(loads[2].iter().sum::<u64>(), 0);
    }

    #[test]
    fn flow_node_loads_mirror_schedule() {
        let net = line();
        let flows = vec![
            // 10 packets over [0, 4500µs): buckets 0..=4 at 1000 µs width.
            FlowSpec {
                src: 0,
                dst: 3,
                start_us: 0,
                packets: 10,
                bytes: 15_000,
                packet_interval_us: 500,
                window: None,
            },
            // Skipped: zero packets and a foreign endpoint.
            FlowSpec {
                src: 0,
                dst: 3,
                start_us: 0,
                packets: 0,
                bytes: 0,
                packet_interval_us: 1,
                window: None,
            },
            FlowSpec {
                src: 0,
                dst: 99,
                start_us: 0,
                packets: 5,
                bytes: 0,
                packet_interval_us: 1,
                window: None,
            },
        ];
        let loads = flow_node_loads(&net, &flows, 1000);
        assert_eq!(loads.len(), net.node_count());
        assert_eq!(loads[0].len(), 5);
        assert_eq!(loads[0].iter().sum::<u64>(), 10, "src charged once");
        assert_eq!(loads[3].iter().sum::<u64>(), 10, "dst charged once");
        assert_eq!(loads[1].iter().sum::<u64>(), 0, "no transit load");
        assert!(loads[0].iter().all(|&x| x >= 2), "roughly uniform spread");
    }

    #[test]
    fn flow_node_loads_empty_schedule() {
        let net = line();
        let loads = flow_node_loads(&net, &[], 1000);
        assert!(loads.iter().all(Vec::is_empty));
    }

    #[test]
    fn memory_constraint_appends_column() {
        let net = campus();
        let n = net.node_count();
        let base = vec![1 as Weight; n];
        let (ncon, w) = append_memory_constraint(&net, 1, &base);
        assert_eq!(ncon, 2);
        assert_eq!(w.len(), 2 * n);
        // Routers in the 20-router AS get 10 + 400.
        let router = net.routers()[0] as usize;
        assert_eq!(w[router * 2 + 1], 410);
        let host = net.hosts()[0] as usize;
        assert_eq!(w[host * 2 + 1], 10);
    }
}
