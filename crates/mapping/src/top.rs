//! The topology-based mapping approach — TOP (§3.1).
//!
//! "Each virtual node is weighted with the total bandwidth in and out of
//! it. The optimization objective is to maximize the link latency between
//! simulation engine nodes. … This basic approach is simple and fast,
//! therefore, it forms a performance baseline for our experiments."

use crate::weights::{append_memory_constraint, latency_graph, with_vertex_weights};
use crate::MapperConfig;
use massf_obs::Recorder;
use massf_partition::{partition_kway_obs, Partitioning};
use massf_topology::Network;

/// Maps the network using topology information only.
pub fn map_top(net: &Network, cfg: &MapperConfig) -> Partitioning {
    map_top_obs(net, cfg, &mut Recorder::new())
}

/// [`map_top`] with observability: records a `mapping/top/weights` span and
/// the partitioner's `top` restart batch on `rec`.
pub fn map_top_obs(net: &Network, cfg: &MapperConfig, rec: &mut Recorder) -> Partitioning {
    let span = rec.start();
    let mut g = latency_graph(net);
    if cfg.include_memory {
        let (ncon, w) = append_memory_constraint(net, 1, g.vwgt());
        g = with_vertex_weights(&g, ncon, w);
    }
    rec.finish("mapping/top/weights", span);
    partition_kway_obs(&g, &cfg.partition_config(), "top", rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_partition::quality::{min_cut_edge_weight, worst_balance};
    use massf_topology::campus::campus;
    use massf_topology::teragrid::teragrid;

    #[test]
    fn campus_three_way_is_valid_and_balanced() {
        let net = campus();
        let p = map_top(&net, &MapperConfig::new(3));
        assert_eq!(p.nparts, 3);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        let g = latency_graph(&net);
        assert!(worst_balance(&g, &p.part, 3) < 1.6);
    }

    #[test]
    fn teragrid_cuts_prefer_high_latency_links() {
        // TOP should cut backbone/site links (high latency, low weight)
        // rather than LAN links: the minimum *cut weight* corresponds to
        // the maximum cut latency.
        let net = teragrid();
        let p = map_top(&net, &MapperConfig::new(5));
        let g = latency_graph(&net);
        let min_cut = min_cut_edge_weight(&g, &p.part).expect("5 parts cut something");
        // Site gateway links have latency 2000 µs -> weight 500; LAN links
        // weight 10000 or 100000. A good TOP cut stays at low weights.
        assert!(
            min_cut <= 10_000,
            "expected cut on a wide-area link, min cut weight {min_cut}"
        );
    }

    #[test]
    fn memory_constraint_accepted() {
        let net = teragrid();
        let cfg = MapperConfig::new(5).with_memory_constraint(true);
        let p = map_top(&net, &cfg);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn deterministic() {
        let net = campus();
        let cfg = MapperConfig::new(3);
        assert_eq!(map_top(&net, &cfg), map_top(&net, &cfg));
    }
}
