//! Dynamic remapping — the paper's §6 direction, implemented.
//!
//! "Load imbalance happens due to burst/variation of traffic injected from
//! the application. Static partitions are fundamentally limited for large
//! emulation if traffic varies widely. … Dynamic remapping the virtual
//! network during the emulation is the only solution."
//!
//! The driver slices the emulation into virtual-time epochs. Each epoch
//! runs under the current partition with NetFlow recording live; at every
//! boundary the accumulated profile feeds the ordinary PROFILE mapper and
//! the emulation migrates to the new partition, paying a modeled
//! checkpoint/transfer cost per moved node.
//!
//! This is the *global* remap policy: the partitioner rebuilds the whole
//! assignment from the measured profile, with no loyalty to the incumbent
//! partition, so a boundary may migrate a large fraction of the network.
//! [`crate::incremental`] is the migration-frugal alternative (budgeted
//! diffusive single-node moves, drift-triggered — DESIGN.md §15);
//! [`crate::incremental::run_online`] drives either policy through one
//! comparable epoch loop, which is how the `ablate_online` bench and the
//! CLI's `--rebalance global|incremental` flag compare them.
//!
//! ```
//! use massf_mapping::dynamic::{run_dynamic, DynamicConfig};
//! use massf_mapping::{MapperConfig, MappingStudy};
//! use massf_topology::campus::campus;
//! use massf_traffic::gridnpb::{self, GridNpbConfig};
//!
//! let study = MappingStudy::new(campus(), MapperConfig::new(3));
//! let hosts = study.net.hosts();
//! let placement: Vec<_> = hosts.iter().step_by(4).take(9).copied().collect();
//! let cfg = GridNpbConfig { base_bytes: 200_000, ..Default::default() };
//! let flows = gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement);
//!
//! let out = run_dynamic(&study, &flows, &DynamicConfig::default());
//! // One partition per epoch; boundaries that remapped migrated nodes.
//! assert_eq!(out.epoch_partitions.len(), DynamicConfig::default().epochs);
//! assert!(out.remaps_applied <= DynamicConfig::default().epochs - 1);
//! ```

use crate::profile::map_profile;
use crate::top::map_top;
use crate::MappingStudy;
use massf_engine::stepping::{MigrationCost, SteppableEmulation};
use massf_engine::{CostModel, EmulationConfig, EmulationReport};
use massf_partition::Partitioning;
use massf_traffic::flow::horizon_us;
use massf_traffic::FlowSpec;

/// Configuration of a dynamic-remapping run.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Number of epochs (1 = static, no remapping).
    pub epochs: usize,
    /// Wall-clock cost charged per remap.
    pub migration: MigrationCost,
    /// Cost model for the emulation itself.
    pub cost: CostModel,
    /// Skip a remap whose new partition moves fewer nodes than this —
    /// migrating two nodes to fix 1 % imbalance is never worth a stall.
    pub min_moved_nodes: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            migration: MigrationCost::default(),
            cost: CostModel::live_application(),
            min_moved_nodes: 2,
        }
    }
}

/// Outcome of a dynamic run.
#[derive(Debug)]
pub struct DynamicOutcome {
    /// The final emulation report (covers the whole run).
    pub report: EmulationReport,
    /// Partition in force during each epoch.
    pub epoch_partitions: Vec<Partitioning>,
    /// Total nodes migrated.
    pub migrated_nodes: usize,
    /// Remaps actually applied (skipped ones excluded).
    pub remaps_applied: usize,
}

/// Runs `flows` with periodic profile-driven remapping. The initial epoch
/// uses the TOP partition (nothing has been measured yet); each boundary
/// repartitions from the NetFlow history so far.
pub fn run_dynamic(
    study: &MappingStudy,
    flows: &[FlowSpec],
    cfg: &DynamicConfig,
) -> DynamicOutcome {
    assert!(cfg.epochs >= 1);
    let initial = map_top(&study.net, &study.cfg);
    let horizon = horizon_us(flows).saturating_add(1);
    let epoch_len = (horizon / cfg.epochs as u64).max(1);

    let emu_cfg = EmulationConfig {
        partition: initial.part.clone(),
        nengines: initial.nparts,
        counter_window_us: study.counter_window_us,
        netflow: true, // live profiling is what enables remapping
        cost: cfg.cost,
        engine_speeds: study.cfg.engine_capacities.clone(),
        scheduler: massf_engine::SchedulerKind::default(),
    };
    let mut emu = SteppableEmulation::new(&study.net, &study.tables, flows, emu_cfg);

    let mut epoch_partitions = vec![initial.clone()];
    let mut current = initial;
    for epoch in 1..cfg.epochs as u64 {
        let now = epoch * epoch_len;
        emu.run_until(now);
        if emu.finished() {
            break;
        }
        // Remap on *recent* traffic: the last two epochs predict the next
        // stage far better than the whole history, which over-weights
        // early bursts that will never recur.
        let lookback = now.saturating_sub(2 * epoch_len);
        let mut records = emu.netflow_snapshot();
        let recent: Vec<_> = records
            .iter()
            .filter(|r| r.last_us >= lookback)
            .cloned()
            .collect();
        if !recent.is_empty() {
            records = recent;
        }
        let candidate = map_profile(&study.net, &study.tables, &records, &study.cfg);
        let moved = current
            .part
            .iter()
            .zip(&candidate.part)
            .filter(|(a, b)| a != b)
            .count();
        if moved >= cfg.min_moved_nodes {
            emu.repartition(candidate.part.clone(), cfg.migration);
            current = candidate;
        }
        epoch_partitions.push(current.clone());
    }
    emu.run_to_completion();
    let migrated_nodes = emu.migrated_nodes;
    let remaps_applied = emu.remaps;
    DynamicOutcome {
        report: emu.finish(),
        epoch_partitions,
        migrated_nodes,
        remaps_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Approach;
    use crate::MapperConfig;
    use massf_metrics::load_imbalance;
    use massf_topology::campus::campus;
    use massf_traffic::gridnpb::{self, GridNpbConfig};

    fn study() -> MappingStudy {
        MappingStudy::new(campus(), MapperConfig::new(3))
    }

    fn phase_shifting_flows(study: &MappingStudy) -> Vec<FlowSpec> {
        // GridNPB's staged DAGs shift load between host groups over time.
        let hosts = study.net.hosts();
        let placement: Vec<_> = hosts.iter().step_by(4).take(9).copied().collect();
        let cfg = GridNpbConfig {
            base_bytes: 400_000,
            ..Default::default()
        };
        gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement)
    }

    #[test]
    fn dynamic_run_conserves_packets() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let injected: u64 = flows.iter().map(|f| f.packets).sum();
        let out = run_dynamic(&s, &flows, &DynamicConfig::default());
        assert_eq!(out.report.delivered, injected);
        assert_eq!(out.report.dropped, 0);
    }

    #[test]
    fn one_epoch_is_static_top() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let cfg = DynamicConfig {
            epochs: 1,
            ..Default::default()
        };
        let out = run_dynamic(&s, &flows, &cfg);
        assert_eq!(out.remaps_applied, 0);
        assert_eq!(out.epoch_partitions.len(), 1);
        // Same events as evaluating TOP statically.
        let top = s.map(Approach::Top, &[], &flows);
        let static_report = s.evaluate(&top, &flows, CostModel::live_application());
        assert_eq!(out.report.total_events(), static_report.total_events());
    }

    #[test]
    fn dynamic_improves_imbalance_over_static_top() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let top = s.map(Approach::Top, &[], &flows);
        let static_report = s.evaluate(&top, &flows, CostModel::live_application());
        let out = run_dynamic(&s, &flows, &DynamicConfig::default());
        let static_imb = load_imbalance(&static_report.engine_events);
        let dyn_imb = load_imbalance(&out.report.engine_events);
        assert!(
            dyn_imb < static_imb,
            "dynamic {dyn_imb:.3} should beat static TOP {static_imb:.3}"
        );
        assert!(out.remaps_applied >= 1, "expected at least one remap");
    }

    #[test]
    fn migration_costs_appear_in_wall_clock() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let cheap = DynamicConfig {
            migration: MigrationCost {
                fixed_us: 0.0,
                per_node_us: 0.0,
            },
            ..Default::default()
        };
        let dear = DynamicConfig {
            migration: MigrationCost {
                fixed_us: 5e6,
                per_node_us: 1e5,
            },
            ..Default::default()
        };
        let out_cheap = run_dynamic(&s, &flows, &cheap);
        let out_dear = run_dynamic(&s, &flows, &dear);
        // Identical emulation, different modeled cost.
        assert_eq!(
            out_cheap.report.total_events(),
            out_dear.report.total_events()
        );
        if out_cheap.remaps_applied > 0 {
            assert!(out_dear.report.wall.total_us > out_cheap.report.wall.total_us);
        }
    }

    #[test]
    fn deterministic() {
        let s = study();
        let flows = phase_shifting_flows(&s);
        let a = run_dynamic(&s, &flows, &DynamicConfig::default());
        let b = run_dynamic(&s, &flows, &DynamicConfig::default());
        assert_eq!(a.report.engine_events, b.report.engine_events);
        assert_eq!(a.migrated_nodes, b.migrated_nodes);
        assert_eq!(a.epoch_partitions, b.epoch_partitions);
    }
}
