//! # massf-core
//!
//! Facade over the MaSSF reproduction stack (Liu & Chien, SC 2003,
//! "Traffic-based Load Balance for Scalable Network Emulation").
//!
//! ```
//! use massf_core::prelude::*;
//!
//! // The paper's Campus/ScaLapack experiment, scaled down for a doctest.
//! let scenario = Scenario::new(Topology::Campus, Workload::Scalapack).with_scale(0.1);
//! let built = scenario.build();
//! let result = built.run_approach(Approach::Profile);
//! assert!(result.load_imbalance >= 0.0);
//! ```
//!
//! Layers (one crate each, re-exported here):
//!
//! * [`massf_graph`] — CSR graph substrate;
//! * [`massf_partition`] — multilevel k-way partitioner (METIS substitute);
//! * [`massf_topology`] — network model + Campus/TeraGrid/BRITE generators;
//! * [`massf_routing`] — shortest-path tables, traceroute, memory model;
//! * [`massf_traffic`] — HTTP background + ScaLapack/GridNPB foreground;
//! * [`massf_engine`] — conservative parallel DES emulator with NetFlow;
//! * [`massf_mapping`] — the TOP / PLACE / PROFILE mapping approaches;
//! * [`massf_metrics`] — load-imbalance metrics and report tables;
//! * [`massf_obs`] — deterministic telemetry and the versioned run report.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audit;
pub mod experiment;
pub mod scenario;

pub use massf_engine as engine;
pub use massf_graph as graph;
pub use massf_mapping as mapping;
pub use massf_metrics as metrics;
pub use massf_obs as obs;
pub use massf_partition as partition;
pub use massf_routing as routing;
pub use massf_topology as topology;
pub use massf_traffic as traffic;

pub use experiment::{ApproachResult, ExperimentRun};
pub use scenario::{BuiltScenario, Scenario, Topology, Workload};

/// The common imports for examples and benches.
pub mod prelude {
    pub use crate::experiment::{ApproachResult, ExperimentRun};
    pub use crate::scenario::{BuiltScenario, Scenario, Topology, Workload};
    pub use massf_engine::{CostModel, EmulationConfig, EmulationReport};
    pub use massf_mapping::{
        Approach, EpochStats, IncrementalConfig, IncrementalOutcome, MapperConfig, MappingStudy,
        Parallelism, RebalanceMode, RoutingKind,
    };
    pub use massf_metrics::{improvement_pct, load_imbalance};
    pub use massf_obs::{report::RunReport, Recorder};
    pub use massf_partition::{partition_kway, PartitionConfig, Partitioning};
    pub use massf_topology::Network;
    pub use massf_traffic::{FlowSpec, PredictedFlow};
}
