//! Experiment scenarios: the paper's topology × workload grid (§4.1).

use massf_mapping::incremental::{run_online, IncrementalConfig, IncrementalOutcome};
use massf_mapping::{MapperConfig, MappingStudy, Parallelism, RebalanceMode, RoutingKind};
use massf_topology::brite::{BriteConfig, BRITE_ENGINES, SCALEUP_ENGINES};
use massf_topology::campus::{campus, CAMPUS_ENGINES};
use massf_topology::teragrid::{teragrid, TERAGRID_ENGINES};
use massf_topology::{Network, NodeId};
use massf_traffic::gridnpb::{self, GridNpbConfig};
use massf_traffic::http::{self, HttpConfig};
use massf_traffic::scalapack::{self, ScalapackConfig};
use massf_traffic::{FlowSpec, PredictedFlow};

/// The evaluation topologies (Table 1 plus the §4.2.3 scale-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Campus: 20 routers / 40 hosts / 3 engines.
    Campus,
    /// TeraGrid: 27 routers / 150 hosts / 5 engines.
    TeraGrid,
    /// Brite: 160 routers / 132 hosts / 8 engines.
    Brite,
    /// The §4.2.3 scale-up: 200 routers / 364 hosts / 20 engines.
    BriteScaleup,
}

impl Topology {
    /// The Table 1 set (the scale-up is reported separately in Table 2).
    pub const TABLE1: [Topology; 3] = [Topology::Campus, Topology::TeraGrid, Topology::Brite];

    /// Builds the network.
    pub fn build(&self) -> Network {
        match self {
            Topology::Campus => campus(),
            Topology::TeraGrid => teragrid(),
            Topology::Brite => massf_topology::brite::generate(&BriteConfig::paper_brite()),
            Topology::BriteScaleup => {
                massf_topology::brite::generate(&BriteConfig::paper_scaleup())
            }
        }
    }

    /// Simulation-engine count the paper assigns to this topology.
    pub fn engines(&self) -> usize {
        match self {
            Topology::Campus => CAMPUS_ENGINES,
            Topology::TeraGrid => TERAGRID_ENGINES,
            Topology::Brite => BRITE_ENGINES,
            Topology::BriteScaleup => SCALEUP_ENGINES,
        }
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Campus => "Campus",
            Topology::TeraGrid => "TeraGrid",
            Topology::Brite => "Brite",
            Topology::BriteScaleup => "Brite-200",
        }
    }
}

/// The foreground applications (§4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// ScaLapack: regular block-cyclic solve on 10 nodes.
    Scalapack,
    /// GridNPB 3.0: HC + VP + MB workflow DAGs (irregular).
    GridNpb,
}

impl Workload {
    /// Both workloads, in the paper's order.
    pub const ALL: [Workload; 2] = [Workload::Scalapack, Workload::GridNpb];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Scalapack => "ScaLapack",
            Workload::GridNpb => "GridNPB",
        }
    }

    /// Number of hosts the application occupies.
    pub fn placement_size(&self) -> usize {
        match self {
            Workload::Scalapack => ScalapackConfig::default().processes(),
            Workload::GridNpb => gridnpb::SUITE_SLOTS,
        }
    }
}

/// A full experiment description: topology, foreground workload, background
/// traffic, and scaling knobs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which network.
    pub topology: Topology,
    /// Which application.
    pub workload: Workload,
    /// Background traffic (None disables it).
    pub background: Option<HttpConfig>,
    /// Problem-size scale factor in (0, 1]: 1.0 is the paper's size;
    /// smaller values shrink matrix/transfer sizes for quick runs.
    pub scale: f64,
    /// Mapper seed.
    pub seed: u64,
    /// Mapping-pipeline worker threads (routing tables, accumulation,
    /// partitioner restarts). Results are bit-identical at every setting;
    /// `Parallelism::serial()` runs the exact single-threaded paths.
    pub parallelism: Parallelism,
    /// Routing-table representation (dense baseline vs compressed interval
    /// rows). Both answer every routing query bit-identically.
    pub routing: RoutingKind,
    /// Number of emulation epochs for the online rebalancer (`1` = a single
    /// epoch, i.e. no boundaries to rebalance at).
    pub epochs: usize,
    /// What the rebalancer does at each epoch boundary (see
    /// [`massf_mapping::incremental`]). `Off` measures epochs but never
    /// migrates.
    pub rebalance: RebalanceMode,
}

impl Scenario {
    /// The paper's setup for `topology` × `workload` with moderate
    /// background traffic.
    pub fn new(topology: Topology, workload: Workload) -> Self {
        Self {
            topology,
            workload,
            background: None,
            scale: 1.0,
            seed: 0x5c2003,
            parallelism: Parallelism::available(),
            routing: RoutingKind::default(),
            epochs: 1,
            rebalance: RebalanceMode::Off,
        }
        .with_moderate_background()
    }

    /// Replaces the background with the paper's "moderate" setting scaled
    /// to the topology's host count.
    pub fn with_moderate_background(mut self) -> Self {
        // Host counts per Table 1; the generator clamps anyway.
        let hosts = match self.topology {
            Topology::Campus => 40,
            Topology::TeraGrid => 150,
            Topology::Brite => 132,
            Topology::BriteScaleup => 364,
        };
        self.background = Some(HttpConfig::moderate_for(hosts));
        self
    }

    /// Disables background traffic.
    pub fn without_background(mut self) -> Self {
        self.background = None;
        self
    }

    /// Sets the problem-size scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.scale = scale;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mapping-pipeline thread count (`1` = exact serial paths).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallelism = Parallelism::new(threads);
        self
    }

    /// Selects the routing-table representation.
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the number of emulation epochs (must be at least 1).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Sets the epoch-boundary rebalance mode.
    pub fn with_rebalance(mut self, mode: RebalanceMode) -> Self {
        self.rebalance = mode;
        self
    }

    /// Instantiates the network, routing, placement, flow schedule, and
    /// PLACE predictions.
    pub fn build(&self) -> BuiltScenario {
        let net = self.topology.build();
        let hosts = net.hosts();
        let placement = clustered_placement(&hosts, self.workload.placement_size());

        // Foreground flows + the PLACE foreground prediction.
        let mut flows = match self.workload {
            Workload::Scalapack => {
                let cfg = ScalapackConfig {
                    matrix_n: ((3000.0 * self.scale) as usize).max(200),
                    ..Default::default()
                };
                scalapack::flows(&cfg, &placement)
            }
            Workload::GridNpb => {
                let cfg = GridNpbConfig {
                    base_bytes: ((1_200_000.0 * self.scale) as u64).max(30_000),
                    ..Default::default()
                };
                gridnpb::flows(&cfg, &gridnpb::paper_suite(&cfg), &placement)
            }
        };
        let mut predicted = massf_mapping::place::foreground_prediction(&net, &placement);

        // Background over the foreground's horizon.
        if let Some(bg) = &self.background {
            let horizon = massf_traffic::flow::horizon_us(&flows).max(1_000_000);
            flows.extend(http::generate(&hosts, bg, horizon));
            predicted.extend(http::predict(&hosts, bg));
        }
        flows.sort_by_key(|f| (f.start_us, f.src, f.dst));

        let cfg = MapperConfig::new(self.topology.engines())
            .with_seed(self.seed)
            .with_parallelism(self.parallelism)
            .with_routing(self.routing);
        BuiltScenario {
            scenario: self.clone(),
            study: MappingStudy::new(net, cfg),
            placement,
            flows,
            predicted,
        }
    }
}

/// A scenario with everything instantiated, ready to map and emulate.
pub struct BuiltScenario {
    /// The originating description.
    pub scenario: Scenario,
    /// Network + routing + mapper configuration.
    pub study: MappingStudy,
    /// Hosts running the foreground application.
    pub placement: Vec<NodeId>,
    /// The complete flow schedule (foreground + background).
    pub flows: Vec<FlowSpec>,
    /// PLACE's predicted flows (foreground uniform + background averages).
    pub predicted: Vec<PredictedFlow>,
}

impl BuiltScenario {
    /// Runs the `massf-lint` preflight over the instantiated scenario:
    /// network, engine count, imbalance tolerance, flow schedule, and
    /// PLACE predictions all feed the pass registry. Callers should refuse
    /// to emulate when [`massf_lint::Diagnostics::has_errors`] is true.
    pub fn lint(&self) -> massf_lint::Diagnostics {
        let mut input = massf_lint::LintInput::network(&self.study.net);
        input.engines = Some(self.study.cfg.engines);
        input.ubfactor = self.study.cfg.ubfactor;
        input.flows = &self.flows;
        input.predicted = &self.predicted;
        massf_lint::lint_scenario(&input)
    }

    /// Runs the epoch-sliced online emulation honoring the scenario's
    /// `epochs` and `rebalance` knobs; see
    /// [`massf_mapping::incremental::run_online`]. Epoch loads and every
    /// boundary decision are functions of virtual time, so the outcome is
    /// bit-identical at every thread count.
    pub fn run_online(&self) -> IncrementalOutcome {
        let cfg = IncrementalConfig {
            epochs: self.scenario.epochs,
            ..IncrementalConfig::default()
        };
        run_online(
            &self.study,
            &self.flows,
            &self.predicted,
            &cfg,
            self.scenario.rebalance,
        )
    }

    /// Runs the post-pipeline artifact audit (MC013–MC018) over a concrete
    /// partitioning produced from this scenario; see
    /// [`crate::audit::audit_study`].
    pub fn audit(&self, partition: &massf_partition::Partitioning) -> massf_lint::Diagnostics {
        crate::audit::audit_study(&self.study, partition)
    }
}

/// Picks `n` hosts spread evenly through the host list (deterministic).
/// Useful as an idealized best-case placement; real deployments are
/// clustered — see [`clustered_placement`].
pub fn spread_placement(hosts: &[NodeId], n: usize) -> Vec<NodeId> {
    assert!(n <= hosts.len(), "not enough hosts for the application");
    let step = hosts.len() as f64 / n as f64;
    (0..n).map(|i| hosts[(i as f64 * step) as usize]).collect()
}

/// Picks `n` hosts as two contiguous clusters (first half of the pool and
/// from its middle) — how real grid applications are placed: ScaLapack over
/// MPICH-G ran on whole clusters at two sites, not on hosts scattered one
/// per subnet. Clustered injection points are what make topology-only
/// mapping (TOP) blind to the application's load (§3.1 vs §3.2).
pub fn clustered_placement(hosts: &[NodeId], n: usize) -> Vec<NodeId> {
    assert!(n <= hosts.len(), "not enough hosts for the application");
    let first = n.div_ceil(2);
    let second = n - first;
    let mid = hosts.len() / 2;
    let mut out: Vec<NodeId> = hosts[..first].to_vec();
    // If the pool is too small for a disjoint second cluster, keep going
    // contiguously after the first.
    if mid + second <= hosts.len() && mid >= first {
        out.extend_from_slice(&hosts[mid..mid + second]);
    } else {
        out.extend_from_slice(&hosts[first..n]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_topologies_have_paper_counts() {
        for (t, routers, hosts, engines) in [
            (Topology::Campus, 20, 40, 3),
            (Topology::TeraGrid, 27, 150, 5),
            (Topology::Brite, 160, 132, 8),
        ] {
            let net = t.build();
            assert_eq!(net.router_count(), routers, "{}", t.label());
            assert_eq!(net.host_count(), hosts, "{}", t.label());
            assert_eq!(t.engines(), engines, "{}", t.label());
        }
        let scale = Topology::BriteScaleup.build();
        assert_eq!(scale.router_count(), 200);
        assert_eq!(scale.host_count(), 364);
        assert_eq!(Topology::BriteScaleup.engines(), 20);
    }

    #[test]
    fn clustered_placement_forms_two_contiguous_groups() {
        let hosts: Vec<NodeId> = (100..140).collect();
        let p = clustered_placement(&hosts, 10);
        assert_eq!(p.len(), 10);
        // First cluster: hosts[0..5]; second: hosts[20..25].
        assert_eq!(&p[..5], &[100, 101, 102, 103, 104]);
        assert_eq!(&p[5..], &[120, 121, 122, 123, 124]);
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        assert_eq!(q.len(), 10, "no repeats");
    }

    #[test]
    fn clustered_placement_small_pool_falls_back_contiguously() {
        let hosts: Vec<NodeId> = (0..6).collect();
        let p = clustered_placement(&hosts, 5);
        assert_eq!(p.len(), 5);
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn campus_clustered_placement_concentrates_in_buildings() {
        // The point of clustering: the app's hosts touch few buildings, so
        // topology-only mapping cannot see the load concentration.
        let net = Topology::Campus.build();
        let p = clustered_placement(&net.hosts(), 10);
        let buildings: std::collections::HashSet<String> = p
            .iter()
            .map(|&h| {
                let (r, _) = net.neighbors(h)[0];
                net.node(r)
                    .name
                    .split('-')
                    .next()
                    .unwrap_or("x")
                    .to_string()
            })
            .collect();
        assert!(buildings.len() <= 3, "placement too spread: {buildings:?}");
    }

    #[test]
    fn spread_placement_is_deterministic_and_distinct() {
        let hosts: Vec<NodeId> = (100..150).collect();
        let p = spread_placement(&hosts, 10);
        assert_eq!(p.len(), 10);
        let mut q = p.clone();
        q.dedup();
        assert_eq!(p, q, "placement must not repeat hosts");
        assert_eq!(p, spread_placement(&hosts, 10));
    }

    #[test]
    fn teragrid_placement_spans_sites() {
        let net = Topology::TeraGrid.build();
        let placement = spread_placement(&net.hosts(), 10);
        let sites: std::collections::HashSet<u32> =
            placement.iter().map(|&h| net.node(h).as_id).collect();
        assert!(sites.len() >= 4, "grid app should span sites: {sites:?}");
    }

    #[test]
    fn built_scenario_has_foreground_and_background() {
        let built = Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.1)
            .build();
        assert_eq!(built.placement.len(), 10);
        assert!(!built.flows.is_empty());
        assert!(!built.predicted.is_empty());
        // Background adds flows beyond the bare foreground.
        let bare = Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.1)
            .without_background()
            .build();
        assert!(built.flows.len() > bare.flows.len());
    }

    #[test]
    fn scale_shrinks_traffic() {
        let small = Scenario::new(Topology::Campus, Workload::GridNpb)
            .without_background()
            .with_scale(0.1)
            .build();
        let full = Scenario::new(Topology::Campus, Workload::GridNpb)
            .without_background()
            .build();
        let sp: u64 = massf_traffic::flow::total_packets(&small.flows);
        let fp: u64 = massf_traffic::flow::total_packets(&full.flows);
        assert!(sp < fp / 2, "scaled {sp} vs full {fp}");
    }

    #[test]
    fn built_scenarios_lint_clean_of_errors() {
        for t in [Topology::Campus, Topology::TeraGrid] {
            let built = Scenario::new(t, Workload::Scalapack)
                .with_scale(0.1)
                .build();
            let diags = built.lint();
            assert_eq!(
                diags.count(massf_lint::Severity::Error),
                0,
                "{}: {}",
                t.label(),
                diags.summary_line()
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        Scenario::new(Topology::Campus, Workload::Scalapack).with_scale(0.0);
    }

    #[test]
    fn run_online_honors_the_epoch_knobs() {
        let built = Scenario::new(Topology::Campus, Workload::GridNpb)
            .without_background()
            .with_scale(0.1)
            .with_epochs(3)
            .with_rebalance(RebalanceMode::Incremental)
            .build();
        let out = built.run_online();
        assert_eq!(out.epoch_stats.len(), 3);
        assert_eq!(out.epoch_partitions.len(), 3);
        // Default scenario: a single epoch, nothing to rebalance.
        let single = Scenario::new(Topology::Campus, Workload::GridNpb)
            .without_background()
            .with_scale(0.1)
            .build();
        assert_eq!(single.scenario.epochs, 1);
        assert_eq!(single.scenario.rebalance, RebalanceMode::Off);
        let out1 = single.run_online();
        assert_eq!(out1.epoch_stats.len(), 1);
        assert_eq!(out1.migrated_nodes, 0);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        Scenario::new(Topology::Campus, Workload::Scalapack).with_epochs(0);
    }
}
