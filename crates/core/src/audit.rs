//! Post-pipeline artifact audits: thin entry points over `massf-lint`'s
//! artifact-pass registry (MC013–MC020).
//!
//! The request preflight ([`crate::scenario::BuiltScenario::lint`]) judges
//! what was asked for; these helpers judge what the pipeline produced — a
//! concrete [`Partitioning`] plus the [`MappingStudy`]'s routing tables,
//! or a recorded trace file. The CLI runs them after `partition`, `run`,
//! `record`, and `replay` and refuses past any Error, the same contract
//! as the preflight.

use massf_lint::{ArtifactInput, Diagnostics};
use massf_mapping::MappingStudy;
use massf_partition::Partitioning;
use massf_topology::Network;
use massf_traffic::tracefile::{self, Trace};

/// Audits the pipeline outputs of `study` — the given `partition` plus the
/// study's routing tables — under the study's engine count, tolerance, and
/// (when configured) heterogeneous capacity vector. Returns a finished
/// MC013–MC018 report.
pub fn audit_study(study: &MappingStudy, partition: &Partitioning) -> Diagnostics {
    let mut input = ArtifactInput::new(&study.net)
        .with_engines(study.cfg.engines)
        .with_ubfactor(study.cfg.ubfactor)
        .with_partition(partition)
        .with_tables(&study.tables);
    if let Some(caps) = &study.cfg.engine_capacities {
        input.engine_capacities = Some(caps);
    }
    massf_lint::lint_artifacts(&input)
}

/// [`audit_study`] extended with the online-rebalancer's load evidence:
/// `predicted_engine_loads` (PLACE's plan, summed per engine) and
/// `epoch_engine_loads` (what NetFlow measured per epoch) additionally
/// feed the MC019/MC020 drift passes, which skip in the plain audit.
pub fn audit_study_online(
    study: &MappingStudy,
    partition: &Partitioning,
    predicted_engine_loads: &[f64],
    epoch_engine_loads: &[Vec<u64>],
) -> Diagnostics {
    let mut input = ArtifactInput::new(&study.net)
        .with_engines(study.cfg.engines)
        .with_ubfactor(study.cfg.ubfactor)
        .with_partition(partition)
        .with_tables(&study.tables)
        .with_predicted_loads(predicted_engine_loads)
        .with_epoch_loads(epoch_engine_loads);
    if let Some(caps) = &study.cfg.engine_capacities {
        input.engine_capacities = Some(caps);
    }
    massf_lint::lint_artifacts(&input)
}

/// A validated trace file: the lint report plus the parsed trace when the
/// text parsed at all.
#[derive(Debug)]
pub struct TraceAudit {
    /// MC016 findings (plus endpoint/request findings when a network was
    /// supplied), finished and ordered.
    pub diags: Diagnostics,
    /// The parsed trace, `None` when the text was rejected outright.
    pub trace: Option<Trace>,
}

/// Validates trace text: parses it, runs the MC016 trace lint, and — when
/// `net` is given — additionally runs the request passes over the parsed
/// schedule so endpoint validity (MC009) and injection feasibility are
/// checked against that topology. This is the `massf check <trace.txt>`
/// and `replay` entry point; `replay`'s former ad-hoc trace checks live
/// here as lint findings.
pub fn audit_trace(text: &str, net: Option<&Network>) -> TraceAudit {
    let parsed = tracefile::parse_trace(text);
    let mut diags = massf_lint::lint_trace(&parsed);
    if let (Some(net), Ok(trace)) = (net, &parsed) {
        let mut input = massf_lint::LintInput::network(net);
        input.flows = &trace.flows;
        diags.merge(massf_lint::lint_scenario(&input));
        diags.finish();
    }
    TraceAudit {
        diags,
        trace: parsed.ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massf_mapping::{Approach, MapperConfig};
    use massf_topology::campus::campus;
    use massf_traffic::FlowSpec;

    #[test]
    fn campus_top_partition_audits_clean_of_errors() {
        let study = MappingStudy::new(campus(), MapperConfig::new(3));
        let p = study.map(Approach::Top, &[], &[]);
        let d = audit_study(&study, &p);
        assert!(!d.has_errors(), "{}", d.summary_line());
        assert_eq!(
            d.passes_run(),
            massf_lint::artifact::artifact_registry().len()
        );
    }

    #[test]
    fn online_audit_surfaces_measured_drift() {
        let study = MappingStudy::new(campus(), MapperConfig::new(3));
        let p = study.map(Approach::Top, &[], &[]);
        // Load that flips engines between epochs: MC020 must fire.
        let epochs = vec![vec![100, 0, 0], vec![0, 100, 0]];
        let predicted = vec![34.0, 33.0, 33.0];
        let d = audit_study_online(&study, &p, &predicted, &epochs);
        assert!(d.iter().any(|x| x.code.as_str() == "MC020"), "{d:?}");
        // A steady, well-predicted run stays drift-clean.
        let quiet = vec![vec![34, 33, 33], vec![34, 33, 33]];
        let d = audit_study_online(&study, &p, &predicted, &quiet);
        assert!(!d.iter().any(|x| x.code.as_str() == "MC019"));
        assert!(!d.iter().any(|x| x.code.as_str() == "MC020"));
    }

    #[test]
    fn trace_audit_catches_foreign_endpoints_with_a_network() {
        let net = campus();
        let flows = vec![FlowSpec {
            src: 9_999,
            dst: 0,
            start_us: 0,
            packets: 1,
            bytes: 1_500,
            packet_interval_us: 100,
            window: None,
        }];
        let text = tracefile::write(&flows);
        let audit = audit_trace(&text, Some(&net));
        assert!(audit.diags.has_errors());
        assert!(audit.diags.iter().any(|x| x.code.as_str() == "MC009"));
        assert!(audit.trace.is_some());

        // Without a network, only the trace-shape checks run: this trace
        // is shape-clean.
        let solo = audit_trace(&text, None);
        assert!(!solo.diags.has_errors(), "{}", solo.diags.summary_line());
    }

    #[test]
    fn unparsable_text_yields_no_trace_and_an_error() {
        let audit = audit_trace("garbage", Some(&campus()));
        assert!(audit.trace.is_none());
        assert!(audit.diags.has_errors());
    }
}
