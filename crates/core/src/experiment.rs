//! Running the paper's experiments: map with an approach, emulate, and
//! extract the three metrics of §4.1.1 (load imbalance, application
//! emulation time, network emulation time in isolation).

use crate::scenario::BuiltScenario;
use massf_engine::{CostModel, EmulationReport};
use massf_mapping::Approach;
use massf_metrics::load_imbalance;
use massf_partition::Partitioning;

/// The outcome of evaluating one mapping approach on one scenario.
#[derive(Debug, Clone)]
pub struct ApproachResult {
    /// Which approach produced the partition.
    pub approach: Approach,
    /// The partition itself.
    pub partitioning: Partitioning,
    /// Normalized std-dev of per-engine kernel event rates (Figures 4/5).
    pub load_imbalance: f64,
    /// Modeled application emulation time in seconds (Figures 6/7).
    pub emulation_time_s: f64,
    /// Modeled isolated network-emulation (replay) time (Figures 9/10).
    pub replay_time_s: f64,
    /// The live-run report (window series etc. for Figures 2/8).
    pub report: EmulationReport,
}

/// Convenience runner over a built scenario.
pub trait ExperimentRun {
    /// Maps with `approach`, emulates live (with real-time pacing) and in
    /// replay mode, and gathers the metrics.
    fn run_approach(&self, approach: Approach) -> ApproachResult;

    /// Runs all three approaches (TOP, PLACE, PROFILE).
    fn run_all(&self) -> Vec<ApproachResult> {
        Approach::ALL
            .iter()
            .map(|&a| self.run_approach(a))
            .collect()
    }
}

impl ExperimentRun for BuiltScenario {
    fn run_approach(&self, approach: Approach) -> ApproachResult {
        let partitioning = self.study.map(approach, &self.predicted, &self.flows);
        let report = self
            .study
            .evaluate(&partitioning, &self.flows, CostModel::live_application());
        let replay = self.study.replay(&partitioning, &self.flows);
        ApproachResult {
            approach,
            load_imbalance: load_imbalance(&report.engine_events),
            emulation_time_s: report.emulation_time_s(),
            replay_time_s: replay.emulation_time_s(),
            partitioning,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, Topology, Workload};

    fn quick() -> BuiltScenario {
        Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.08)
            .without_background()
            .build()
    }

    #[test]
    fn approach_result_is_complete() {
        let built = quick();
        let r = built.run_approach(Approach::Top);
        assert_eq!(r.approach, Approach::Top);
        assert_eq!(r.partitioning.nparts, 3);
        assert!(r.load_imbalance >= 0.0);
        assert!(r.emulation_time_s > 0.0);
        assert!(r.replay_time_s > 0.0);
        assert!(r.report.delivered > 0);
    }

    #[test]
    fn replay_never_slower_than_live() {
        let built = quick();
        for r in built.run_all() {
            assert!(
                r.replay_time_s <= r.emulation_time_s + 1e-9,
                "{}: replay {} vs live {}",
                r.approach.label(),
                r.replay_time_s,
                r.emulation_time_s
            );
        }
    }

    #[test]
    fn all_three_approaches_run() {
        let built = quick();
        let results = built.run_all();
        assert_eq!(results.len(), 3);
        let labels: Vec<_> = results.iter().map(|r| r.approach.label()).collect();
        assert_eq!(labels, vec!["TOP", "PLACE", "PROFILE"]);
        // Every approach delivers the same packet count: mapping must never
        // change what is emulated, only where.
        let d0 = results[0].report.delivered;
        assert!(results.iter().all(|r| r.report.delivered == d0));
    }
}
