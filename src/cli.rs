//! The `massf` command-line tool: generate topologies, partition them, run
//! emulations, and probe routes — the whole reproduction stack from a
//! shell.
//!
//! Subcommands (see `massf help`):
//!
//! ```text
//! massf topology <campus|teragrid|brite|brite-scaleup>
//! massf check <network.dml|trace.txt> [--engines K] [--traffic <spec.txt>]
//!             [--audit] [--capacities C1,C2,...] [--format human|json]
//! massf partition <network.dml> --engines K [--seed N]
//! massf run <network.dml> [--engines K] [--traffic <spec.txt>] [--duration-s S]
//!           [--approach top|place|profile] [--replay] [--report <run.json>]
//! massf ping <network.dml> <src-name> <dst-name>
//! massf report <run.json>
//! ```
//!
//! Every scenario-consuming subcommand runs the `massf-lint` preflight
//! first and refuses to proceed past an Error-level diagnostic
//! (`--deny-warnings` promotes warnings). Unknown `--flags` are rejected
//! on every subcommand.
//!
//! All logic lives here (testable); `src/bin/massf.rs` is a thin shim.

use massf_core::engine::engine::lookahead_us;
use massf_core::engine::probe;
use massf_core::obs::report::{
    EmulationInfo, EngineLoad, EpochRow, LintFinding, LintSummary, PartitionInfo, RebalanceInfo,
    ScenarioInfo,
};
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::dml;
use massf_core::topology::NodeId;
use massf_core::traffic::spec::{parse_traffic, TrafficKind};
use massf_core::traffic::{cbr, http, onoff};
use massf_lint::{render, ArtifactInput, Diagnostics, LintInput};

/// A CLI failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
massf — traffic-based load balance for scalable network emulation

USAGE:
  massf topology <campus|teragrid|brite|brite-scaleup>
      Print the network in the description format.

  massf check <network.dml> [--engines K] [--traffic <spec.txt>]
              [--duration-s S] [--audit] [--capacities C1,C2,...]
              [--format human|json] [--deny-warnings] [--threads T]
              [--routing dense|compressed|lazy]
  massf check <trace.txt> [--network <network.dml>] [--format human|json]
              [--deny-warnings]
      Statically lint the scenario: topology, partition request, traffic
      spec, and (when a spec and duration are given) the generated flow
      schedule. --audit (alias --partition) additionally maps a TOP
      partition and runs the artifact passes MC013..MC018 over the
      concrete partition and routing tables; --capacities audits a
      heterogeneous engine-capacity vector and implies --audit. A file
      beginning with `# massf-trace` is linted as a recorded trace
      instead (MC016), plus endpoint validity when --network names the
      topology it was recorded on. Exits 0 when no Error-level
      diagnostics are found, 1 otherwise; the report is printed either
      way. --list-passes instead prints the full stable-code catalog
      (MC001..MC020 scenario/artifact passes + SA000..SA007 source
      passes) with severities; machine-readable under --format json.

  massf srclint [<dir>] [--format human|json] [--deny-warnings]
      Source-level determinism lint over the workspace rooted at <dir>
      (default: the current directory): a comment/string-aware scan of
      src/, crates/, and tests/ for byte-determinism hazards — unordered
      HashMap iteration, wall-clock reads outside the massf-obs
      quarantine, entropy-seeded randomness, environment access, direct
      printing in libraries, thread-identity probes, and floating-point
      accumulation in thread::scope (stable codes SA000..SA007).
      Legitimate sites carry `srclint: allow(SA00x) - reason` comments;
      a stale allow is itself an Error. Exits 0 when no Error-level
      finding survives, 1 otherwise.

  massf partition <network.dml> --engines K [--seed N] [--threads T]
                  [--deny-warnings]
      Partition the network with the TOP approach; prints node -> engine.
      The produced partition is audited (MC013, MC017, MC018) and the
      command refuses past any Error-level finding.

  massf run <network.dml> [--engines K] [--traffic <spec.txt>] [--duration-s S]
            [--approach top|place|profile] [--replay] [--threads T]
            [--routing dense|compressed|lazy] [--deny-warnings] [--report <run.json>]
            [--epochs E] [--rebalance off|global|incremental]
      Generate background traffic from the spec (a built-in CBR background
      when --traffic is omitted), map it with the chosen approach, emulate,
      and print the load-balance report. Defaults: 3 engines, 10 s,
      profile approach. The mapped partition and routing tables are
      audited (MC013..MC018) before emulating; Errors refuse. --report
      also writes the versioned JSON run report (see `massf report`),
      including the audit as its `lint` block.

      --epochs E splits the emulation into E epochs; each boundary turns
      the epoch's NetFlow slice into measured per-engine loads and drift
      values (surfaced in the report's `rebalance` block and audited as
      MC019/MC020). --rebalance picks what a boundary does when the drift
      is loud enough: `incremental` migrates boundary nodes locally,
      `global` recomputes a full PROFILE partition, `off` (default) only
      measures. The first epoch is mapped traffic-blind with TOP (nothing
      has been measured yet), so --approach must be top or omitted;
      --replay is incompatible. `--rebalance` alone implies 4 epochs.

  massf ping <network.dml> <src-name> <dst-name>
      Emulate an ICMP echo through the discrete-event engine.

  massf record <network.dml> --traffic <spec.txt> --duration-s S --out <trace.txt>
               [--deny-warnings] [--report <run.json>]
      Generate a traffic schedule from the spec and save it as a trace
      (with the declared duration embedded). The trace text is audited
      (MC016) before anything is written; Errors refuse.

  massf replay <network.dml> <trace.txt> --engines K
               [--approach top|place|profile] [--threads T]
               [--routing dense|compressed|lazy] [--deny-warnings]
               [--report <run.json>]
      Replay a recorded trace as fast as possible (isolated network
      emulation, the paper's Figures 9/10 measurement). The trace is
      checked first (MC016 shape plus endpoint validity against the
      network), and the mapped partition is audited before emulating.

  massf report <run.json>
      Render a JSON run report written by --report as human text:
      sparkline load timelines, imbalance-over-time, partitioner restart
      outcomes, and the wall-clock stage-timing breakdown.

  --threads T       Worker threads for the mapping pipeline (routing
                    tables, traffic accumulation, partitioner restarts).
                    Defaults to the machine's core count; results are
                    identical at any T.
  --routing R       Routing-table representation: `compressed` (default;
                    interval-encoded rows, breaks the O(n²) table wall),
                    `dense` (the flat baseline matrices), or `lazy`
                    (compressed rows materialized on first lookup, so
                    resident bytes follow each engine's own traffic).
                    Routing answers are bit-identical in all three;
                    reports gain `routing.*` size statistics, and lazy
                    runs add demand/residency lines sampled after the
                    emulation.
  --deny-warnings   Promote preflight Warn diagnostics to Errors.

  massf help
      Show this text.

Scenario-consuming subcommands run the massf-lint preflight before the
pipeline and the artifact audit after it, refusing to proceed past any
Error-level diagnostic (stable codes MC001..MC020).
";

/// Runs the CLI; returns the text to print or an error message.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("topology") => cmd_topology(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("srclint") => cmd_srclint(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some(other) => Err(err(format!("unknown command {other:?}; try `massf help`"))),
    }
}

fn cmd_topology(args: &[String]) -> Result<String, CliError> {
    validate_flags("topology", args, &[], &[])?;
    let name = args
        .first()
        .ok_or_else(|| err("usage: massf topology <name>"))?;
    let topo = match name.as_str() {
        "campus" => Topology::Campus,
        "teragrid" => Topology::TeraGrid,
        "brite" => Topology::Brite,
        "brite-scaleup" => Topology::BriteScaleup,
        other => return Err(err(format!("unknown topology {other:?}"))),
    };
    Ok(dml::write(&topo.build()))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Rejects any `--flag` the subcommand does not understand. `value_flags`
/// consume the following argument; `bool_flags` stand alone. A value flag
/// in final position is also an error (its value is missing).
fn validate_flags(
    cmd: &str,
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                if i + 1 >= args.len() {
                    return Err(err(format!("{a} requires a value")));
                }
                i += 2;
                continue;
            }
            if !bool_flags.contains(&a) {
                return Err(err(format!(
                    "unknown flag {a:?} for `massf {cmd}`; try `massf help`"
                )));
            }
        }
        i += 1;
    }
    Ok(())
}

/// Runs the `massf-lint` preflight over everything the subcommand knows
/// and refuses (with the human-rendered report as the error) when any
/// Error-level diagnostic — or any warning under `deny_warnings` — is
/// present.
fn preflight(
    net: &Network,
    engines: Option<usize>,
    traffic: Option<&TrafficKind>,
    predicted: &[PredictedFlow],
    flows: &[FlowSpec],
    deny_warnings: bool,
) -> Result<(), CliError> {
    let mut input = LintInput::network(net);
    input.engines = engines;
    input.predicted = predicted;
    input.flows = flows;
    input.traffic = traffic;
    let mut diags = massf_lint::lint_scenario(&input);
    if deny_warnings {
        diags.deny_warnings();
        diags.finish();
    }
    if diags.has_errors() {
        return Err(err(format!(
            "preflight check failed\n{}",
            render::human(&diags)
        )));
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<String, CliError> {
    validate_flags(
        "check",
        args,
        &[
            "--engines",
            "--traffic",
            "--duration-s",
            "--format",
            "--threads",
            "--routing",
            "--capacities",
            "--network",
        ],
        &["--deny-warnings", "--audit", "--partition", "--list-passes"],
    )?;
    let json = match flag(args, "--format").unwrap_or("human") {
        "human" => false,
        "json" => true,
        other => return Err(err(format!("unknown format {other:?} (human|json)"))),
    };
    if args.iter().any(|a| a == "--list-passes") {
        return Ok(list_passes(json));
    }
    let path = args.first().ok_or_else(|| {
        err("usage: massf check <network.dml|trace.txt> [--engines K] [--traffic <spec>]")
    })?;
    let deny = args.iter().any(|a| a == "--deny-warnings");
    // Validated here, consumed by the audit stage below; every lint stage
    // is byte-identical at any thread count.
    let threads = threads_flag(args)?;
    let engines = match flag(args, "--engines") {
        Some(e) => Some(
            e.parse::<usize>()
                .map_err(|_| err("--engines must be a number"))?,
        ),
        None => None,
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    // A trace file lints as a trace, not as a topology. Anything whose
    // first bytes are the trace header goes down the MC016 path —
    // including wrong-version traces, which MC016 rejects with the found
    // header rather than a DML parse error.
    if text.starts_with(massf_core::traffic::tracefile::HEADER_PREFIX) {
        return check_trace(&text, args, json, deny);
    }
    let net = dml::parse(&text).map_err(|e| err(format!("{path}: {e}")))?;
    let kind = match flag(args, "--traffic") {
        Some(spec_path) => {
            let text = std::fs::read_to_string(spec_path)
                .map_err(|e| err(format!("cannot read {spec_path}: {e}")))?;
            Some(parse_traffic(&text).map_err(|e| err(format!("{spec_path}: {e}")))?)
        }
        None => None,
    };
    let duration_s: f64 = match flag(args, "--duration-s") {
        Some(d) => d
            .parse()
            .map_err(|_| err("--duration-s must be a number"))?,
        None => 10.0,
    };

    // Stage 1: lint everything known statically. Flow generation asserts
    // on degenerate host sets — exactly what the MC010 spec-fit pass
    // rejects — so the schedule is generated and linted in a second stage
    // only when no spec-fit Error was found. Other errors (say a
    // disconnected topology) do not block stage 2: the report should show
    // the schedule-level findings alongside the structural ones.
    let mut input = LintInput::network(&net);
    input.engines = engines;
    input.traffic = kind.as_ref();
    let mut diags = massf_lint::lint_scenario(&input);
    let spec_fits = !diags
        .iter()
        .any(|d| d.code == massf_lint::Code::Mc010 && d.severity == massf_lint::Severity::Error);
    if spec_fits {
        if let Some(kind) = kind.as_ref() {
            let duration_us = (duration_s * 1e6) as u64;
            let (flows, predicted) = generate_traffic(&net, kind, duration_us);
            input.flows = &flows;
            input.predicted = &predicted;
            diags = massf_lint::lint_scenario(&input);
        }
    }

    // Stage 3 (opt-in): the artifact audit. Map a TOP partition through
    // the real pipeline and run MC013..MC018 over the partition and
    // routing tables it produced.
    let caps: Option<Vec<f64>> = match flag(args, "--capacities") {
        Some(list) => Some(
            list.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<f64>()
                        .map_err(|_| err(format!("--capacities: {s:?} is not a number")))
                })
                .collect::<Result<_, _>>()?,
        ),
        None => None,
    };
    let audit = caps.is_some() || args.iter().any(|a| a == "--audit" || a == "--partition");
    if audit {
        let engines_n = engines.unwrap_or(3);
        let mut cfg = MapperConfig::new(engines_n);
        if let Some(par) = threads {
            cfg = cfg.with_parallelism(par);
        }
        if let Some(kind) = routing_flag(args)? {
            cfg = cfg.with_routing(kind);
        }
        // A degenerate capacity vector never reaches the mapper (it
        // asserts on length); MC017 reports it on the audit side instead.
        if let Some(c) = &caps {
            if c.len() == engines_n && c.iter().all(|x| x.is_finite() && *x > 0.0) {
                cfg = cfg.with_engine_capacities(c.clone());
            }
        }
        let study = MappingStudy::new(net.clone(), cfg);
        let partition = study.map(Approach::Top, &[], &[]);
        let mut artifact = ArtifactInput::new(&net)
            .with_engines(engines_n)
            .with_ubfactor(study.cfg.ubfactor)
            .with_partition(&partition)
            .with_tables(&study.tables);
        if let Some(c) = &caps {
            artifact = artifact.with_capacities(c);
        }
        diags.merge(massf_lint::lint_artifacts(&artifact));
        diags.finish();
    }
    if deny {
        diags.deny_warnings();
        diags.finish();
    }
    let report = if json {
        render::json(&diags)
    } else {
        render::human(&diags)
    };
    if diags.has_errors() {
        Err(CliError(report))
    } else {
        Ok(report)
    }
}

/// The trace half of `massf check`: MC016 over the file text, plus the
/// request passes (endpoint validity and schedule feasibility) when
/// `--network` supplies the topology the trace was recorded on.
fn check_trace(text: &str, args: &[String], json: bool, deny: bool) -> Result<String, CliError> {
    let net = match flag(args, "--network") {
        Some(p) => Some(load_network(p)?),
        None => None,
    };
    let mut audit = massf_core::audit::audit_trace(text, net.as_ref());
    if deny {
        audit.diags.deny_warnings();
        audit.diags.finish();
    }
    let report = if json {
        render::json(&audit.diags)
    } else {
        render::human(&audit.diags)
    };
    if audit.diags.has_errors() {
        Err(CliError(report))
    } else {
        Ok(report)
    }
}

/// The full stable-code catalog for `massf check --list-passes`: every
/// scenario/artifact pass (MC001..MC020, from `massf-lint`) and every
/// source pass (SA000..SA007, from `massf-srclint`) with its worst
/// severity and one-line description. Machine-readable under
/// `--format json` with byte-deterministic output.
fn list_passes(json: bool) -> String {
    // (code, family, severity label, name, summary) rows in catalog order.
    let mut rows: Vec<(&str, &str, &str, &str, &str)> = Vec::new();
    for code in massf_lint::Code::ALL {
        rows.push((
            code.as_str(),
            "scenario",
            code.worst_severity().label(),
            code.name(),
            code.summary(),
        ));
    }
    for code in massf_srclint::SaCode::ALL {
        rows.push((
            code.as_str(),
            "source",
            code.severity().label(),
            code.name(),
            code.summary(),
        ));
    }
    if json {
        let mut out = String::new();
        out.push_str("{\n  \"tool\": \"massf-check\",\n  \"format\": 1,\n  \"passes\": [");
        for (i, (code, family, sev, name, summary)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"code\": {},\n      \"family\": {},\n      \
                 \"severity\": {},\n      \"name\": {},\n      \"summary\": {}\n    }}",
                json_str(code),
                json_str(family),
                json_str(sev),
                json_str(name),
                json_str(summary)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    } else {
        let mut out = String::new();
        for (code, family, sev, name, summary) in &rows {
            out.push_str(&format!(
                "{code}  {sev:<7}  {name:<24}  {summary}  [{family}]\n"
            ));
        }
        out.push_str(&format!(
            "{} scenario/artifact passes (MC), {} source passes (SA)\n",
            massf_lint::Code::ALL.len(),
            massf_srclint::SaCode::ALL.len()
        ));
        out
    }
}

/// Minimal JSON string quoting for the catalog renderer (static strings;
/// the full escape set still applied for safety).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `massf srclint [<dir>] [--format human|json] [--deny-warnings]` — the
/// source-level determinism lint (stable codes SA000..SA007) over the
/// workspace rooted at `<dir>` (default: the current directory). Mirrors
/// the `massf check` contract: the report is printed either way, and the
/// command fails when any Error-level finding (or any Warn under
/// `--deny-warnings`) survives the allow annotations.
fn cmd_srclint(args: &[String]) -> Result<String, CliError> {
    validate_flags("srclint", args, &["--format"], &["--deny-warnings"])?;
    let json = match flag(args, "--format").unwrap_or("human") {
        "human" => false,
        "json" => true,
        other => return Err(err(format!("unknown format {other:?} (human|json)"))),
    };
    let deny = args.iter().any(|a| a == "--deny-warnings");
    // Positional root, skipping flag values.
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--format" {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            i += 1;
            continue;
        }
        positionals.push(a);
        i += 1;
    }
    if positionals.len() > 1 {
        return Err(err(
            "usage: massf srclint [<dir>] [--format human|json] [--deny-warnings]",
        ));
    }
    let root = positionals.first().copied().unwrap_or(".");
    let mut report = massf_srclint::lint_workspace(std::path::Path::new(root))
        .map_err(|e| err(format!("srclint: cannot scan {root}: {e}")))?;
    if deny {
        report.deny_warnings();
    }
    let text = if json {
        massf_srclint::render::render_json(&report)
    } else {
        massf_srclint::render::render_human(&report)
    };
    if report.has_errors() {
        Err(CliError(text))
    } else {
        Ok(text)
    }
}

/// Applies `--deny-warnings` to a post-pipeline artifact audit and
/// refuses — with the human-rendered report — past any Error-level
/// finding, mirroring the preflight contract.
fn audit_gate(diags: &mut Diagnostics, deny_warnings: bool) -> Result<(), CliError> {
    if deny_warnings {
        diags.deny_warnings();
        diags.finish();
    }
    if diags.has_errors() {
        return Err(err(format!(
            "artifact audit failed\n{}",
            render::human(diags)
        )));
    }
    Ok(())
}

/// Digests a finished lint report into the run report's plain-string
/// `lint` block (`massf-obs` cannot depend on `massf-lint` without a
/// crate cycle, so the conversion lives here).
fn lint_summary(diags: &Diagnostics) -> LintSummary {
    use massf_lint::Severity;
    LintSummary {
        errors: diags.count(Severity::Error) as u64,
        warnings: diags.count(Severity::Warn) as u64,
        notes: diags.count(Severity::Note) as u64,
        passes_run: diags.passes_run() as u64,
        findings: diags
            .iter()
            .map(|d| LintFinding {
                severity: d.severity.label().to_string(),
                code: d.code.as_str().to_string(),
                location: d.location.render(),
                message: d.message.clone(),
            })
            .collect(),
    }
}

/// Parses `--routing R` into a [`RoutingKind`]; `None` when absent (the
/// `MapperConfig` default — compressed — applies).
fn routing_flag(args: &[String]) -> Result<Option<RoutingKind>, CliError> {
    match flag(args, "--routing") {
        None if args.iter().any(|a| a == "--routing") => Err(err("--routing requires a value")),
        None => Ok(None),
        Some(label) => RoutingKind::parse(label).map(Some).ok_or_else(|| {
            err(format!(
                "--routing must be dense|compressed|lazy, got {label:?}"
            ))
        }),
    }
}

/// Surfaces routing-table size statistics in the run report: measured vs
/// paper-predicted bytes (the names sort adjacently in the counters
/// block), the dense baseline, and — for compressed tables — the row and
/// run shape. All values are deterministic functions of the topology, so
/// they sit above the report's timing boundary.
fn record_routing_stats(rec: &mut Recorder, study: &MappingStudy) {
    let tables = &study.tables;
    rec.add_counter("routing.bytes_dense_baseline", tables.dense_bytes());
    rec.add_counter("routing.bytes_measured", tables.table_bytes());
    rec.add_counter(
        "routing.bytes_predicted",
        massf_core::routing::memory::predicted_table_bytes(&study.net),
    );
    rec.set_gauge(
        "routing.compression_x",
        tables.dense_bytes() as f64 / tables.table_bytes().max(1) as f64,
    );
    if let Some(s) = tables.run_stats() {
        rec.add_counter("routing.rows_leaf", s.leaf_rows as u64);
        rec.add_counter("routing.rows_shared", s.shared_rows as u64);
        rec.add_counter("routing.rows_unique", s.unique_rows as u64);
        rec.add_counter("routing.runs_max_per_row", s.runs_max_per_row as u64);
        rec.add_counter("routing.runs_total", s.runs_total as u64);
        rec.set_gauge("routing.runs_mean_per_row", s.runs_mean_per_row);
    }
}

/// Surfaces lazy-table demand statistics after the emulation: what the run
/// actually materialized, the lookup hit/miss split, and each engine's
/// resident share under the final partition. A no-op for the eager
/// representations. Every value is a function of the topology and the flow
/// schedule — not of the thread count or interleaving — so these counters
/// land above the report's timing mask and stay byte-identical across
/// `--threads`.
fn record_lazy_run_stats(rec: &mut Recorder, study: &MappingStudy, assignment: &[u32]) {
    let tables = &study.tables;
    let Some(s) = tables.lazy_stats() else {
        return;
    };
    rec.add_counter("routing.lazy_demand_hits", s.demand_hits);
    rec.add_counter("routing.lazy_demand_misses", s.demand_misses);
    rec.add_counter("routing.lazy_lookups", s.lookups);
    rec.add_counter("routing.lazy_resident_bytes", s.resident_bytes);
    rec.add_counter("routing.lazy_rows_leaf", s.rows_leaf as u64);
    rec.add_counter("routing.lazy_rows_materialized", s.rows_materialized as u64);
    rec.add_counter("routing.lazy_rows_pending", s.rows_pending as u64);
    rec.add_counter("routing.lazy_runs_resident", s.runs_resident as u64);
    let nengines = assignment
        .iter()
        .map(|&p| p as usize + 1)
        .max()
        .unwrap_or(1);
    if let Some(slices) = tables.slice_stats(assignment, nengines) {
        for sl in &slices {
            let e = sl.residency.engine;
            rec.add_counter(
                &format!("routing.lazy_slice{e}_resident_bytes"),
                sl.residency.resident_bytes,
            );
            rec.add_counter(
                &format!("routing.lazy_slice{e}_rows"),
                sl.residency.rows_materialized as u64,
            );
        }
    }
}

/// Parses `--threads T` into a [`Parallelism`]; `None` when absent.
fn threads_flag(args: &[String]) -> Result<Option<Parallelism>, CliError> {
    match flag(args, "--threads") {
        None if args.iter().any(|a| a == "--threads") => Err(err("--threads requires a value")),
        None => Ok(None),
        Some(t) => {
            let n: usize = t
                .parse()
                .map_err(|_| err("--threads must be a positive number"))?;
            if n == 0 {
                return Err(err("--threads must be a positive number"));
            }
            Ok(Some(Parallelism::new(n)))
        }
    }
}

fn load_network(path: &str) -> Result<Network, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    // Structural soundness (connectivity, degenerate nodes, ...) is the
    // lint preflight's job, so parse errors are the only hard failures.
    dml::parse(&text).map_err(|e| err(format!("{path}: {e}")))
}

fn cmd_partition(args: &[String]) -> Result<String, CliError> {
    validate_flags(
        "partition",
        args,
        &["--engines", "--seed", "--threads"],
        &["--deny-warnings"],
    )?;
    let path = args
        .first()
        .ok_or_else(|| err("usage: massf partition <network.dml> --engines K"))?;
    let engines: usize = flag(args, "--engines")
        .ok_or_else(|| err("missing --engines"))?
        .parse()
        .map_err(|_| err("--engines must be a number"))?;
    let net = load_network(path)?;
    let deny = args.iter().any(|a| a == "--deny-warnings");
    preflight(&net, Some(engines), None, &[], &[], deny)?;
    let mut cfg = MapperConfig::new(engines);
    if let Some(seed) = flag(args, "--seed") {
        cfg = cfg.with_seed(seed.parse().map_err(|_| err("--seed must be a number"))?);
    }
    if let Some(par) = threads_flag(args)? {
        cfg = cfg.with_parallelism(par);
    }
    let partition = massf_core::mapping::top::map_top(&net, &cfg);
    // Post-pipeline audit of the concrete partition (no routing tables
    // were built here, so MC014/MC015 skip but still count as run).
    let mut audit = massf_lint::lint_artifacts(
        &ArtifactInput::new(&net)
            .with_engines(engines)
            .with_ubfactor(cfg.ubfactor)
            .with_partition(&partition),
    );
    audit_gate(&mut audit, deny)?;
    let mut out = String::new();
    for n in net.nodes() {
        out.push_str(&format!("{}\t{}\n", n.name, partition.part[n.id as usize]));
    }
    out.push_str(&format!(
        "# {} engines, sizes {:?}\n",
        engines,
        partition.part_sizes()
    ));
    Ok(out)
}

fn generate_traffic(
    net: &Network,
    kind: &TrafficKind,
    duration_us: u64,
) -> (Vec<FlowSpec>, Vec<PredictedFlow>) {
    let hosts = net.hosts();
    match kind {
        TrafficKind::Http(cfg) => (
            http::generate(&hosts, cfg, duration_us),
            http::predict(&hosts, cfg),
        ),
        TrafficKind::Cbr(cfg) => (
            cbr::generate(&hosts, cfg, duration_us),
            cbr::predict(&hosts, cfg),
        ),
        TrafficKind::OnOff(cfg) => (
            onoff::generate(&hosts, cfg, duration_us),
            onoff::predict(&hosts, cfg),
        ),
    }
}

/// Traffic spec used when `massf run` is invoked without `--traffic`: a
/// modest CBR background that fits any of the shipped topologies.
const DEFAULT_TRAFFIC_SPEC: &str = "traffic { name CBR\n sessions 6\n rate_mbps 4 }";

/// Summarizes `partition` for the run report: nodes per engine, cut-link
/// count, and the conservative window lookahead the engines would use.
fn partition_info(net: &Network, partition: &Partitioning) -> PartitionInfo {
    let cut_links = net
        .links()
        .iter()
        .filter(|l| partition.part[l.a as usize] != partition.part[l.b as usize])
        .count() as u64;
    PartitionInfo {
        sizes: partition.part_sizes().iter().map(|&s| s as u64).collect(),
        cut_links,
        lookahead_us: lookahead_us(net, &partition.part),
    }
}

/// Digests an [`EmulationReport`] into the run report's emulation section.
fn emulation_info(report: &EmulationReport) -> EmulationInfo {
    let engines = (0..report.nengines)
        .map(|i| EngineLoad {
            events: report.engine_events[i],
            stalled_rounds: report.engine_stalls[i],
            remote_sent: report.engine_remote_sent[i],
            remote_recv: report.engine_remote_recv[i],
            queue_peak: report.engine_queue_peak[i],
            sched_resizes: report.engine_sched_resizes[i],
            timeline: report.window_series[i].clone(),
            stall_timeline: report.stall_series[i].clone(),
            recv_timeline: report.recv_series[i].clone(),
        })
        .collect();
    EmulationInfo {
        delivered: report.delivered,
        dropped: report.dropped,
        total_events: report.total_events(),
        rounds: report.rounds,
        remote_messages: report.remote_messages,
        virtual_end_us: report.virtual_end_us,
        counter_window_us: report.counter_window_us,
        mean_latency_us: report.mean_latency_us(),
        imbalance: load_imbalance(&report.engine_events),
        engines,
    }
}

/// Digests an online-rebalancing outcome into the run report's
/// `rebalance` block.
fn rebalance_info(mode: RebalanceMode, outcome: &IncrementalOutcome) -> RebalanceInfo {
    RebalanceInfo {
        mode: mode.label().to_string(),
        migrated_nodes: outcome.migrated_nodes as u64,
        remaps_applied: outcome.remaps_applied as u64,
        epochs: outcome
            .epoch_stats
            .iter()
            .map(|e| EpochRow {
                epoch: e.epoch as u64,
                end_us: e.end_us,
                engine_loads: e.engine_loads.clone(),
                cut_packets: e.cut_packets,
                drift_measured: e.drift_measured,
                drift_predicted: e.drift_predicted,
                applied: e.applied,
                skipped: e.skipped,
                moves: e.moves as u64,
                cost_us: e.cost_us,
                imbalance_before: e.imbalance_before,
                imbalance_after: e.imbalance_after,
            })
            .collect(),
    }
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    validate_flags(
        "run",
        args,
        &[
            "--engines",
            "--traffic",
            "--duration-s",
            "--approach",
            "--threads",
            "--routing",
            "--report",
            "--epochs",
            "--rebalance",
        ],
        &["--replay", "--deny-warnings"],
    )?;
    let path = args.first().ok_or_else(|| {
        err("usage: massf run <network.dml> [--engines K] [--traffic <spec>] [--duration-s S]")
    })?;
    let mut rec = Recorder::new();
    let span = rec.start();
    let net = load_network(path)?;
    rec.finish("cli/load_network", span);
    let engines: usize = match flag(args, "--engines") {
        Some(e) => e.parse().map_err(|_| err("--engines must be a number"))?,
        None => 3,
    };
    let (spec_label, spec_text) = match flag(args, "--traffic") {
        Some(spec_path) => (
            spec_path,
            std::fs::read_to_string(spec_path)
                .map_err(|e| err(format!("cannot read {spec_path}: {e}")))?,
        ),
        None => ("<built-in CBR>", DEFAULT_TRAFFIC_SPEC.to_string()),
    };
    let kind = parse_traffic(&spec_text).map_err(|e| err(format!("{spec_label}: {e}")))?;
    let duration_s: f64 = match flag(args, "--duration-s") {
        Some(d) => d
            .parse()
            .map_err(|_| err("--duration-s must be a number"))?,
        None => 10.0,
    };
    let duration_us = (duration_s * 1e6) as u64;
    let approach = match flag(args, "--approach").unwrap_or("profile") {
        "top" => Approach::Top,
        "place" => Approach::Place,
        "profile" => Approach::Profile,
        other => return Err(err(format!("unknown approach {other:?}"))),
    };
    let replay = args.iter().any(|a| a == "--replay");
    let deny = args.iter().any(|a| a == "--deny-warnings");
    let mode = match flag(args, "--rebalance") {
        Some(m) => RebalanceMode::parse(m).ok_or_else(|| {
            err(format!(
                "--rebalance must be off|global|incremental, got {m:?}"
            ))
        })?,
        None => RebalanceMode::Off,
    };
    let epochs: usize = match flag(args, "--epochs") {
        Some(e) => {
            let n = e.parse().map_err(|_| err("--epochs must be a number"))?;
            if n == 0 {
                return Err(err("--epochs must be at least 1"));
            }
            n
        }
        // `--rebalance` without `--epochs` implies the default epoch count
        // (`off` included: it measures epochs without ever migrating).
        None if flag(args, "--rebalance").is_some() => IncrementalConfig::default().epochs,
        None => 1,
    };
    let online = epochs > 1;
    if online {
        if replay {
            return Err(err("--replay cannot be combined with --epochs"));
        }
        // The online run starts traffic-blind: epoch 1 is mapped with TOP
        // and later boundaries adapt from measurements, so a predicted or
        // profiled initial approach has nothing to contribute.
        if !matches!(flag(args, "--approach"), None | Some("top")) {
            return Err(err(
                "--epochs maps the first epoch with TOP; use --approach top or omit it",
            ));
        }
    }
    let approach = if online { Approach::Top } else { approach };

    // Stage 1: static preflight; flow generation is only safe on a clean
    // base (generators assert on degenerate host sets).
    let span = rec.start();
    preflight(&net, Some(engines), Some(&kind), &[], &[], deny)?;
    rec.finish("cli/preflight", span);
    let span = rec.start();
    let (flows, predicted) = generate_traffic(&net, &kind, duration_us);
    rec.finish("cli/traffic_gen", span);
    if flows.is_empty() {
        return Err(err("the traffic spec generated no flows for this duration"));
    }
    // Stage 2: the generated schedule itself.
    let span = rec.start();
    preflight(&net, Some(engines), Some(&kind), &predicted, &flows, deny)?;
    rec.finish("cli/preflight_schedule", span);
    rec.add_counter("traffic.flows", flows.len() as u64);
    let mut cfg = MapperConfig::new(engines);
    if let Some(par) = threads_flag(args)? {
        cfg = cfg.with_parallelism(par);
    }
    if let Some(kind) = routing_flag(args)? {
        cfg = cfg.with_routing(kind);
    }
    let threads = cfg.parallelism.get();
    let span = rec.start();
    let study = MappingStudy::new(net, cfg);
    rec.finish("mapping/routing_tables", span);
    record_routing_stats(&mut rec, &study);
    let partition = study.map_obs(approach, &predicted, &flows, &mut rec);
    let (report, rebalance, mut audit, final_partition) = if online {
        // Online path: the audit runs once, after the emulation, when the
        // MC019/MC020 drift evidence exists — same refusal contract.
        let inc_cfg = IncrementalConfig {
            epochs,
            ..IncrementalConfig::default()
        };
        let span = rec.start();
        let outcome = massf_core::mapping::run_online(&study, &flows, &predicted, &inc_cfg, mode);
        rec.finish("engine/emulate", span);
        // PLACE's plan summed per engine under the initial partition: the
        // MC019 baseline the measured epochs are compared against.
        let (_, predicted_node) = massf_core::mapping::weights::accumulate_predicted_with(
            &study.net,
            &study.tables,
            &predicted,
            study.cfg.parallelism,
        );
        let mut predicted_engine = vec![0.0f64; engines];
        for (v, w) in predicted_node.iter().enumerate() {
            predicted_engine[partition.part[v] as usize] += w;
        }
        let epoch_loads: Vec<Vec<u64>> = outcome
            .epoch_stats
            .iter()
            .map(|e| e.engine_loads.clone())
            .collect();
        let span = rec.start();
        let audit = massf_core::audit::audit_study_online(
            &study,
            &partition,
            &predicted_engine,
            &epoch_loads,
        );
        rec.finish("cli/audit", span);
        let info = rebalance_info(mode, &outcome);
        let final_partition = outcome
            .epoch_partitions
            .last()
            .cloned()
            .unwrap_or_else(|| partition.clone());
        (outcome.report, Some(info), audit, final_partition)
    } else {
        // Post-pipeline audit: the mapped partition plus the study's
        // routing tables must hold up before any emulation time is spent
        // on them.
        let span = rec.start();
        let mut audit = massf_core::audit::audit_study(&study, &partition);
        rec.finish("cli/audit", span);
        audit_gate(&mut audit, deny)?;
        let span = rec.start();
        let report = if replay {
            study.replay(&partition, &flows)
        } else {
            study.evaluate(&partition, &flows, CostModel::live_application())
        };
        rec.finish("engine/emulate", span);
        (report, None, audit, partition.clone())
    };
    audit_gate(&mut audit, deny)?;
    record_lazy_run_stats(&mut rec, &study, &final_partition.part);

    let mut out = String::new();
    out.push_str(&format!("network      : {}\n", study.net.summary()));
    out.push_str(&format!("approach     : {}\n", approach.label()));
    out.push_str(&format!("flows        : {}\n", flows.len()));
    out.push_str(&format!(
        "delivered    : {} packets ({} dropped)\n",
        report.delivered, report.dropped
    ));
    out.push_str(&format!("kernel events: {}\n", report.total_events()));
    out.push_str(&format!(
        "imbalance    : {:.3}\n",
        load_imbalance(&report.engine_events)
    ));
    out.push_str(&format!(
        "emulation    : {:.2}s modeled ({} sync rounds, {} cross-engine events)\n",
        report.emulation_time_s(),
        report.rounds,
        report.remote_messages
    ));
    out.push_str(&format!("{}\n", report.balance_line()));
    if let Some(r) = &rebalance {
        out.push_str(&format!(
            "rebalance    : {} — {} node(s) migrated over {} remap(s) in {} epochs\n",
            r.mode,
            r.migrated_nodes,
            r.remaps_applied,
            r.epochs.len()
        ));
        for ep in &r.epochs {
            let decision = if ep.applied {
                format!("moved {}", ep.moves)
            } else if ep.skipped {
                "skipped".to_string()
            } else {
                "final".to_string()
            };
            out.push_str(&format!(
                "  epoch {}: drift {:.3} (pred {:.3})  imbalance {:.3} -> {:.3}  {}\n",
                ep.epoch,
                ep.drift_measured,
                ep.drift_predicted,
                ep.imbalance_before,
                ep.imbalance_after,
                decision
            ));
        }
    }

    if let Some(report_path) = flag(args, "--report") {
        let mut run_report = RunReport::new(
            "run",
            ScenarioInfo {
                network: study.net.summary(),
                engines: engines as u64,
                approach: approach.label().to_string(),
                flows: flows.len() as u64,
                duration_s: Some(duration_s),
            },
            rec,
            threads,
        );
        // The online path reports the partition actually in force at the
        // end of the run (after any boundary migrations).
        run_report.partition = Some(partition_info(&study.net, &final_partition));
        run_report.emulation = Some(emulation_info(&report));
        run_report.rebalance = rebalance.clone();
        run_report.lint = Some(lint_summary(&audit));
        std::fs::write(report_path, run_report.to_json())
            .map_err(|e| err(format!("cannot write {report_path}: {e}")))?;
        out.push_str(&format!("report       : {report_path}\n"));
    }
    Ok(out)
}

fn cmd_record(args: &[String]) -> Result<String, CliError> {
    validate_flags(
        "record",
        args,
        &["--traffic", "--duration-s", "--out", "--report"],
        &["--deny-warnings"],
    )?;
    let path = args.first().ok_or_else(|| {
        err("usage: massf record <network.dml> --traffic <spec> --duration-s S --out <trace>")
    })?;
    let mut rec = Recorder::new();
    let span = rec.start();
    let net = load_network(path)?;
    rec.finish("cli/load_network", span);
    let spec_path = flag(args, "--traffic").ok_or_else(|| err("missing --traffic"))?;
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| err(format!("cannot read {spec_path}: {e}")))?;
    let kind = parse_traffic(&spec_text).map_err(|e| err(format!("{spec_path}: {e}")))?;
    let duration_s: f64 = flag(args, "--duration-s")
        .ok_or_else(|| err("missing --duration-s"))?
        .parse()
        .map_err(|_| err("--duration-s must be a number"))?;
    let out_path = flag(args, "--out").ok_or_else(|| err("missing --out"))?;
    let deny = args.iter().any(|a| a == "--deny-warnings");
    preflight(&net, None, Some(&kind), &[], &[], deny)?;
    let duration_us = (duration_s * 1e6) as u64;
    let span = rec.start();
    let (flows, _) = generate_traffic(&net, &kind, duration_us);
    rec.finish("cli/traffic_gen", span);
    rec.add_counter("traffic.flows", flows.len() as u64);
    let text = massf_core::traffic::tracefile::write_with_duration(&flows, Some(duration_us));
    // Audit the exact bytes headed for disk — what `replay` and
    // `massf check` will read back — and refuse to write a broken trace.
    let mut audit = massf_core::audit::audit_trace(&text, Some(&net)).diags;
    audit_gate(&mut audit, deny)?;
    std::fs::write(out_path, &text).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    if let Some(report_path) = flag(args, "--report") {
        // No mapping and no emulation happen here, so the report carries
        // the scenario shape (engines 0, approach "-"), the trace audit,
        // and timing.
        let mut run_report = RunReport::new(
            "record",
            ScenarioInfo {
                network: net.summary(),
                engines: 0,
                approach: "-".to_string(),
                flows: flows.len() as u64,
                duration_s: Some(duration_s),
            },
            rec,
            1,
        );
        run_report.lint = Some(lint_summary(&audit));
        std::fs::write(report_path, run_report.to_json())
            .map_err(|e| err(format!("cannot write {report_path}: {e}")))?;
    }
    Ok(format!(
        "recorded {} flows to {out_path}
",
        flows.len()
    ))
}

fn cmd_replay(args: &[String]) -> Result<String, CliError> {
    let [path, trace_path, rest @ ..] = args else {
        return Err(err(
            "usage: massf replay <network.dml> <trace.txt> --engines K",
        ));
    };
    validate_flags(
        "replay",
        rest,
        &[
            "--engines",
            "--approach",
            "--threads",
            "--routing",
            "--report",
        ],
        &["--deny-warnings"],
    )?;
    let mut rec = Recorder::new();
    let span = rec.start();
    let net = load_network(path)?;
    rec.finish("cli/load_network", span);
    let trace_text = std::fs::read_to_string(trace_path)
        .map_err(|e| err(format!("cannot read {trace_path}: {e}")))?;
    let deny = rest.iter().any(|a| a == "--deny-warnings");
    // MC016 trace-shape lint plus endpoint validity against this
    // topology; the former ad-hoc "trace contains no flows" refusal is
    // the MC016 empty-trace Error now.
    let span = rec.start();
    let trace_audit = massf_core::audit::audit_trace(&trace_text, Some(&net));
    rec.finish("cli/trace_audit", span);
    let mut trace_diags = trace_audit.diags;
    if deny {
        trace_diags.deny_warnings();
        trace_diags.finish();
    }
    if trace_diags.has_errors() {
        return Err(err(format!(
            "trace check failed\n{}",
            render::human(&trace_diags)
        )));
    }
    let flows = trace_audit
        .trace
        .expect("an error-free trace audit implies the trace parsed")
        .flows;
    let engines: usize = flag(rest, "--engines")
        .ok_or_else(|| err("missing --engines"))?
        .parse()
        .map_err(|_| err("--engines must be a number"))?;
    // Infeasible engine counts and degenerate schedules surface here as
    // MC* diagnostics.
    let span = rec.start();
    preflight(&net, Some(engines), None, &[], &flows, deny)?;
    rec.finish("cli/preflight", span);
    rec.add_counter("traffic.flows", flows.len() as u64);
    let approach = match flag(rest, "--approach").unwrap_or("profile") {
        "top" => Approach::Top,
        "place" => Approach::Place,
        "profile" => Approach::Profile,
        other => return Err(err(format!("unknown approach {other:?}"))),
    };
    let mut cfg = MapperConfig::new(engines);
    if let Some(par) = threads_flag(rest)? {
        cfg = cfg.with_parallelism(par);
    }
    if let Some(kind) = routing_flag(rest)? {
        cfg = cfg.with_routing(kind);
    }
    let threads = cfg.parallelism.get();
    let span = rec.start();
    let study = MappingStudy::new(net, cfg);
    rec.finish("mapping/routing_tables", span);
    record_routing_stats(&mut rec, &study);
    let partition = study.map_obs(approach, &[], &flows, &mut rec);
    // Post-pipeline audit: partition and routing tables, folded together
    // with the trace findings for the run report's lint block.
    let mut audit = massf_core::audit::audit_study(&study, &partition);
    audit.merge(trace_diags);
    audit.finish();
    audit_gate(&mut audit, deny)?;
    let span = rec.start();
    let report = study.replay(&partition, &flows);
    rec.finish("engine/emulate", span);
    record_lazy_run_stats(&mut rec, &study, &partition.part);
    if let Some(report_path) = flag(rest, "--report") {
        let mut run_report = RunReport::new(
            "replay",
            ScenarioInfo {
                network: study.net.summary(),
                engines: engines as u64,
                approach: approach.label().to_string(),
                flows: flows.len() as u64,
                // The trace fixes the schedule; no wall-clock duration
                // knob is involved in a replay.
                duration_s: None,
            },
            rec,
            threads,
        );
        run_report.partition = Some(partition_info(&study.net, &partition));
        run_report.emulation = Some(emulation_info(&report));
        run_report.lint = Some(lint_summary(&audit));
        std::fs::write(report_path, run_report.to_json())
            .map_err(|e| err(format!("cannot write {report_path}: {e}")))?;
    }
    Ok(format!(
        "replayed {} flows under {}: {} packets in {:.2}s modeled, imbalance {:.3}
{}
",
        flows.len(),
        approach.label(),
        report.delivered,
        report.emulation_time_s(),
        load_imbalance(&report.engine_events),
        report.balance_line()
    ))
}

fn cmd_report(args: &[String]) -> Result<String, CliError> {
    validate_flags("report", args, &[], &[])?;
    let path = args
        .first()
        .ok_or_else(|| err("usage: massf report <run.json>"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let report = RunReport::from_json(&text).map_err(|e| err(format!("{path}: {e}")))?;
    Ok(report.render_human())
}

fn find_node(net: &Network, name: &str) -> Result<NodeId, CliError> {
    net.nodes()
        .iter()
        .find(|n| n.name == name)
        .map(|n| n.id)
        .ok_or_else(|| err(format!("no node named {name:?}")))
}

fn cmd_ping(args: &[String]) -> Result<String, CliError> {
    validate_flags("ping", args, &[], &[])?;
    let [path, src, dst] = args else {
        return Err(err("usage: massf ping <network.dml> <src-name> <dst-name>"));
    };
    let net = load_network(path)?;
    let tables = RoutingTables::build(&net);
    let (s, d) = (find_node(&net, src)?, find_node(&net, dst)?);
    let report = probe::ping(&net, &tables, s, d)
        .ok_or_else(|| err(format!("{dst} is unreachable from {src}")))?;
    Ok(format!(
        "PING {dst} from {src}: rtt {:.3} ms (request {:.3} ms, reply {:.3} ms)\n",
        report.rtt_us() as f64 / 1000.0,
        report.request_us as f64 / 1000.0,
        report.reply_us as f64 / 1000.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn write_campus() -> tempfile_path::TempPath {
        let text = run(&args(&["topology", "campus"])).unwrap();
        tempfile_path::write("massf_cli_campus.dml", &text)
    }

    /// Minimal self-cleaning temp-file helper (std-only).
    mod tempfile_path {
        pub struct TempPath(pub std::path::PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        impl TempPath {
            pub fn as_str(&self) -> &str {
                self.0.to_str().expect("utf8 path")
            }
        }
        pub fn write(name: &str, content: &str) -> TempPath {
            let mut p = std::env::temp_dir();
            p.push(format!("{}-{}", std::process::id(), name));
            std::fs::write(&p, content).expect("write temp file");
            TempPath(p)
        }
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("massf topology"));
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn topology_dumps_parseable_dml() {
        let text = run(&args(&["topology", "teragrid"])).unwrap();
        let net = massf_core::topology::dml::parse(&text).unwrap();
        assert_eq!(net.router_count(), 27);
        assert!(run(&args(&["topology", "atlantis"])).is_err());
    }

    #[test]
    fn partition_command_partitions() {
        let f = write_campus();
        let out = run(&args(&["partition", f.as_str(), "--engines", "3"])).unwrap();
        assert!(out.contains("# 3 engines"));
        // One line per node plus the summary.
        assert_eq!(out.lines().count(), 60 + 1);
        // Engine labels are 0..3.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let label: usize = line.split('\t').nth(1).unwrap().parse().unwrap();
            assert!(label < 3);
        }
    }

    #[test]
    fn partition_threads_flag_is_deterministic() {
        let f = write_campus();
        let serial = run(&args(&[
            "partition",
            f.as_str(),
            "--engines",
            "3",
            "--threads",
            "1",
        ]))
        .unwrap();
        let parallel = run(&args(&[
            "partition",
            f.as_str(),
            "--engines",
            "3",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(serial, parallel, "partition must not depend on --threads");
        let e = run(&args(&[
            "partition",
            f.as_str(),
            "--engines",
            "3",
            "--threads",
            "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--threads"), "{e}");
        let e = run(&args(&[
            "partition",
            f.as_str(),
            "--engines",
            "3",
            "--threads",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--threads requires a value"), "{e}");
    }

    #[test]
    fn partition_rejects_bad_engine_count() {
        let f = write_campus();
        assert!(run(&args(&["partition", f.as_str(), "--engines", "0"])).is_err());
        assert!(run(&args(&["partition", f.as_str(), "--engines", "x"])).is_err());
        assert!(run(&args(&["partition", f.as_str()])).is_err());
    }

    #[test]
    fn run_command_emulates_cbr() {
        let net_file = write_campus();
        let spec = tempfile_path::write(
            "massf_cli_cbr.txt",
            "traffic { name CBR\n sessions 6\n rate_mbps 4 }",
        );
        let out = run(&args(&[
            "run",
            net_file.as_str(),
            "--engines",
            "3",
            "--traffic",
            spec.as_str(),
            "--duration-s",
            "2",
            "--approach",
            "profile",
        ]))
        .unwrap();
        assert!(out.contains("delivered"), "{out}");
        assert!(out.contains("imbalance"), "{out}");
        assert!(out.contains("(0 dropped)"), "{out}");
    }

    #[test]
    fn run_rejects_bad_spec() {
        let net_file = write_campus();
        let spec = tempfile_path::write("massf_cli_bad.txt", "traffic { name FTP }");
        let e = run(&args(&[
            "run",
            net_file.as_str(),
            "--engines",
            "3",
            "--traffic",
            spec.as_str(),
            "--duration-s",
            "1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown traffic generator"), "{e}");
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let net_file = write_campus();
        let spec = tempfile_path::write(
            "massf_cli_rec.txt",
            "traffic { name CBR\n sessions 5\n rate_mbps 3 }",
        );
        let trace = tempfile_path::write("massf_cli_trace.txt", "");
        let out = run(&args(&[
            "record",
            net_file.as_str(),
            "--traffic",
            spec.as_str(),
            "--duration-s",
            "2",
            "--out",
            trace.as_str(),
        ]))
        .unwrap();
        assert!(out.contains("recorded 5 flows"), "{out}");
        let report = tempfile_path::write("massf_cli_replay_report.json", "");
        let out = run(&args(&[
            "replay",
            net_file.as_str(),
            trace.as_str(),
            "--engines",
            "3",
            "--report",
            report.as_str(),
        ]))
        .unwrap();
        assert!(out.contains("replayed 5 flows"), "{out}");
        assert!(out.contains("imbalance"), "{out}");
        let parsed =
            RunReport::from_json(&std::fs::read_to_string(report.0.as_path()).unwrap()).unwrap();
        assert_eq!(parsed.command, "replay");
        assert_eq!(parsed.scenario.duration_s, None);
        assert!(parsed.emulation.is_some());
    }

    #[test]
    fn run_defaults_write_and_render_report() {
        // The quickstart invocation: no --engines/--traffic/--duration-s,
        // just the scenario and a report path.
        let net_file = write_campus();
        let report = tempfile_path::write("massf_cli_run_report.json", "");
        let out = run(&args(&[
            "run",
            net_file.as_str(),
            "--duration-s",
            "2",
            "--report",
            report.as_str(),
        ]))
        .unwrap();
        assert!(out.contains("approach     : PROFILE"), "{out}");
        assert!(out.contains("report       : "), "{out}");

        let json = std::fs::read_to_string(report.0.as_path()).unwrap();
        assert!(
            json.starts_with("{\n  \"tool\": \"massf-run\",\n"),
            "{json}"
        );
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed.command, "run");
        assert_eq!(parsed.scenario.engines, 3, "default engine count");
        let emu = parsed.emulation.as_ref().expect("emulation section");
        assert_eq!(emu.engines.len(), 3);
        let part = parsed.partition.as_ref().expect("partition section");
        assert!(part.cut_links > 0);
        assert!(parsed.profile.is_some(), "PROFILE telemetry recorded");

        let rendered = run(&args(&["report", report.as_str()])).unwrap();
        assert!(rendered.contains("engine load"), "{rendered}");
        assert!(rendered.contains("partitioner restarts"), "{rendered}");
        assert!(rendered.contains("timing (wall-clock"), "{rendered}");
    }

    #[test]
    fn run_with_epochs_reports_the_rebalance_block() {
        let net_file = write_campus();
        let report = tempfile_path::write("massf_cli_epochs_report.json", "");
        let out = run(&args(&[
            "run",
            net_file.as_str(),
            "--duration-s",
            "2",
            "--epochs",
            "3",
            "--rebalance",
            "incremental",
            "--report",
            report.as_str(),
        ]))
        .unwrap();
        assert!(out.contains("rebalance    : incremental"), "{out}");
        assert!(out.contains("epoch 1:"), "{out}");
        let parsed =
            RunReport::from_json(&std::fs::read_to_string(report.0.as_path()).unwrap()).unwrap();
        let reb = parsed.rebalance.expect("rebalance block");
        assert_eq!(reb.mode, "incremental");
        assert_eq!(reb.epochs.len(), 3);
        assert_eq!(
            parsed.scenario.approach, "TOP",
            "online runs start with TOP"
        );
    }

    #[test]
    fn rebalance_alone_implies_default_epochs() {
        let net_file = write_campus();
        let out = run(&args(&[
            "run",
            net_file.as_str(),
            "--duration-s",
            "2",
            "--rebalance",
            "off",
        ]))
        .unwrap();
        assert!(out.contains("in 4 epochs"), "{out}");
    }

    #[test]
    fn epoch_flags_reject_bad_combinations() {
        let f = write_campus();
        let e = run(&args(&["run", f.as_str(), "--epochs", "0"])).unwrap_err();
        assert!(e.0.contains("--epochs must be at least 1"), "{e}");
        let e = run(&args(&["run", f.as_str(), "--rebalance", "sideways"])).unwrap_err();
        assert!(e.0.contains("off|global|incremental"), "{e}");
        let e = run(&args(&["run", f.as_str(), "--epochs", "2", "--replay"])).unwrap_err();
        assert!(e.0.contains("--replay cannot be combined"), "{e}");
        let e = run(&args(&[
            "run",
            f.as_str(),
            "--epochs",
            "2",
            "--approach",
            "profile",
        ]))
        .unwrap_err();
        assert!(e.0.contains("TOP"), "{e}");
    }

    #[test]
    fn report_rejects_missing_and_foreign_files() {
        let e = run(&args(&["report", "/nonexistent/run.json"])).unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
        let junk = tempfile_path::write("massf_cli_junk.json", "{\"tool\": \"other\"}");
        let e = run(&args(&["report", junk.as_str()])).unwrap_err();
        assert!(e.0.contains("not a massf run report"), "{e}");
    }

    #[test]
    fn replay_rejects_foreign_trace() {
        let net_file = write_campus();
        let trace = tempfile_path::write(
            "massf_cli_foreign.txt",
            "# massf-trace v1\nflow 900 901 0 1 100 1\n",
        );
        let e = run(&args(&[
            "replay",
            net_file.as_str(),
            trace.as_str(),
            "--engines",
            "3",
        ]))
        .unwrap_err();
        assert!(e.0.contains("MC009"), "{e}");
        assert!(e.0.contains("does not exist"), "{e}");
    }

    #[test]
    fn every_subcommand_rejects_unknown_flags() {
        let f = write_campus();
        let cases: &[&[&str]] = &[
            &["topology", "campus", "--bogus"],
            &["check", f.as_str(), "--bogus"],
            &["partition", f.as_str(), "--engines", "3", "--bogus"],
            &["run", f.as_str(), "--engines", "3", "--bogus"],
            &["ping", f.as_str(), "host0", "host1", "--bogus"],
            &["record", f.as_str(), "--bogus"],
            &["replay", f.as_str(), "trace.txt", "--bogus"],
            &["report", "run.json", "--bogus"],
        ];
        for case in cases {
            let e = run(&args(case)).unwrap_err();
            assert!(
                e.0.contains("unknown flag \"--bogus\""),
                "{case:?} accepted an unknown flag: {e}"
            );
            assert!(e.0.contains(case[0]), "{case:?} names the subcommand: {e}");
        }
    }

    #[test]
    fn check_clean_scenario_reports_no_errors() {
        let f = write_campus();
        let out = run(&args(&["check", f.as_str(), "--engines", "3"])).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
        // JSON form agrees and is byte-deterministic.
        let j1 = run(&args(&[
            "check",
            f.as_str(),
            "--engines",
            "3",
            "--format",
            "json",
        ]))
        .unwrap();
        let j2 = run(&args(&[
            "check",
            f.as_str(),
            "--engines",
            "3",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"errors\": 0"), "{j1}");
    }

    #[test]
    fn check_disconnected_network_fails_with_code() {
        let island = tempfile_path::write(
            "massf_cli_island.dml",
            "node 0 router \"r0\" as 0\n\
             node 1 host \"h0\" as 0\n\
             node 2 host \"h1\" as 0\n\
             link 0 1 bw 100 lat 100\n",
        );
        let e = run(&args(&["check", island.as_str()])).unwrap_err();
        assert!(e.0.contains("MC001"), "{e}");
        assert!(e.0.contains("MC012"), "{e}");
    }

    #[test]
    fn check_deny_warnings_promotes() {
        // 3 hosts but a CBR session count wanting 10 endpoints is only a
        // Note; an empty session count is a Warn that --deny-warnings
        // turns into a failure.
        let net_file = write_campus();
        let spec = tempfile_path::write(
            "massf_cli_empty_spec.txt",
            "traffic { name CBR\n sessions 0 }",
        );
        let ok = run(&args(&[
            "check",
            net_file.as_str(),
            "--traffic",
            spec.as_str(),
        ]));
        assert!(ok.is_ok(), "warnings alone must not fail: {ok:?}");
        let e = run(&args(&[
            "check",
            net_file.as_str(),
            "--traffic",
            spec.as_str(),
            "--deny-warnings",
        ]))
        .unwrap_err();
        assert!(e.0.contains("MC010"), "{e}");
    }

    #[test]
    fn partition_refuses_disconnected_network() {
        let island = tempfile_path::write(
            "massf_cli_island2.dml",
            "node 0 router \"r0\" as 0\n\
             node 1 host \"h0\" as 0\n\
             node 2 host \"h1\" as 0\n\
             link 0 1 bw 100 lat 100\n",
        );
        let e = run(&args(&["partition", island.as_str(), "--engines", "2"])).unwrap_err();
        assert!(e.0.contains("preflight check failed"), "{e}");
        assert!(e.0.contains("MC001"), "{e}");
    }

    #[test]
    fn ping_command_reports_rtt() {
        let f = write_campus();
        let out = run(&args(&["ping", f.as_str(), "host0", "host39"])).unwrap();
        assert!(out.starts_with("PING host39 from host0"), "{out}");
        assert!(out.contains("rtt"), "{out}");
        assert!(run(&args(&["ping", f.as_str(), "host0", "nowhere"])).is_err());
    }
}
