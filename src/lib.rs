//! Top-level crate of the MaSSF reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library lives in the
//! `massf-*` crates under `crates/`; start from [`massf_core`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use massf_core as core_api;

pub mod cli;
