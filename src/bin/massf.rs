//! Thin shim over [`massf_repro::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match massf_repro::cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("massf: {e}");
            std::process::exit(1);
        }
    }
}
