//! Custom topology end-to-end: author a network in the DML-like
//! description format, parse the paper's HTTP background-traffic spec, and
//! compare TOP against PROFILE on it.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use massf_core::prelude::*;
use massf_core::topology::dml;
use massf_core::traffic::http;
use massf_core::traffic::spec::parse_http;

/// A small dumbbell: two LANs joined by a slow WAN link.
const NETWORK: &str = r#"
# dumbbell: two sites, slow core
node 0 router "left-core" as 0
node 1 router "right-core" as 1
node 2 router "left-edge" as 0
node 3 router "right-edge" as 1
node 4 host "l0" as 0
node 5 host "l1" as 0
node 6 host "l2" as 0
node 7 host "r0" as 1
node 8 host "r1" as 1
node 9 host "r2" as 1
link 0 1 bw 45 lat 20000
link 0 2 bw 1000 lat 300
link 1 3 bw 1000 lat 300
link 2 4 bw 100 lat 100
link 2 5 bw 100 lat 100
link 2 6 bw 100 lat 100
link 3 7 bw 100 lat 100
link 3 8 bw 100 lat 100
link 3 9 bw 100 lat 100
"#;

/// The paper's background-traffic block format (§4.1.4), shrunk to fit.
const TRAFFIC: &str = r#"
traffic {
  name HTTP
  request_size 200KByte
  think_time 2
  client_per_server 2
  server_number 3
}
"#;

fn main() {
    let net = dml::parse(NETWORK).expect("valid description");
    println!("parsed network: {}", net.summary());

    let http_cfg = parse_http(TRAFFIC).expect("valid traffic block");
    println!(
        "background: {} servers x {} clients, {} KiB responses, {}s think time",
        http_cfg.server_count,
        http_cfg.clients_per_server,
        http_cfg.request_size_bytes / 1024,
        http_cfg.think_time_s
    );

    let hosts = net.hosts();
    let flows = http::generate(&hosts, &http_cfg, 20_000_000); // 20 s
    let predicted = http::predict(&hosts, &http_cfg);
    println!(
        "generated {} flows over 20 s of virtual time\n",
        flows.len()
    );

    let study = MappingStudy::new(net, MapperConfig::new(2));
    for approach in [Approach::Top, Approach::Profile] {
        let partition = study.map(approach, &predicted, &flows);
        let report = study.evaluate(&partition, &flows, CostModel::replay());
        println!(
            "{:8} imbalance {:.3}, network emulation {:.2}s, cut spans the WAN: {}",
            approach.label(),
            load_imbalance(&report.engine_events),
            report.emulation_time_s(),
            partition.part[0] != partition.part[1],
        );
    }
    println!("\nBoth approaches should split the dumbbell at the 20 ms WAN link —");
    println!("it maximizes lookahead — but PROFILE also balances the measured load.");
}
