//! Quickstart: emulate ScaLapack on the Campus network and compare the
//! paper's three mapping approaches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use massf_core::prelude::*;

fn main() {
    // The paper's Campus/ScaLapack experiment, scaled to run in seconds.
    let scenario = Scenario::new(Topology::Campus, Workload::Scalapack).with_scale(0.4);
    let built = scenario.build();

    println!("network : {}", built.study.net.summary());
    println!("engines : {}", built.study.cfg.engines);
    println!(
        "flows   : {} (foreground ScaLapack + HTTP background)",
        built.flows.len()
    );
    println!();
    println!(
        "{:8} {:>14} {:>16} {:>14}",
        "approach", "load imbalance", "emulation time", "replay time"
    );

    let results = built.run_all();
    for r in &results {
        println!(
            "{:8} {:>14.3} {:>15.1}s {:>13.1}s",
            r.approach.label(),
            r.load_imbalance,
            r.emulation_time_s,
            r.replay_time_s
        );
    }

    let top = &results[0];
    let profile = &results[2];
    println!(
        "\nPROFILE improves load balance by {:.0}% and emulation time by {:.0}% over TOP",
        improvement_pct(top.load_imbalance, profile.load_imbalance),
        improvement_pct(top.emulation_time_s, profile.emulation_time_s),
    );
    println!("engine loads under TOP    : {}", top.report.balance_line());
    println!(
        "engine loads under PROFILE: {}",
        profile.report.balance_line()
    );
}
