//! Dynamic remapping in action (the paper's §6 future work): watch the
//! emulation migrate virtual nodes between engines as GridNPB's load
//! shifts across workflow stages.
//!
//! ```sh
//! cargo run --release --example dynamic_remap
//! ```

use massf_core::mapping::dynamic::{run_dynamic, DynamicConfig};
use massf_core::prelude::*;

fn main() {
    let built = Scenario::new(Topology::Campus, Workload::GridNpb)
        .with_scale(0.5)
        .without_background()
        .build();
    println!("GridNPB on {}\n", built.study.net.summary());

    // Static baseline: the best static mapping the paper offers.
    let static_p = built
        .study
        .map(Approach::Profile, &built.predicted, &built.flows);
    let static_r = built
        .study
        .evaluate(&static_p, &built.flows, CostModel::live_application());

    // Dynamic: repartition from live NetFlow at each epoch boundary.
    let cfg = DynamicConfig {
        epochs: 4,
        ..Default::default()
    };
    let out = run_dynamic(&built.study, &built.flows, &cfg);

    println!(
        "static PROFILE : imbalance {:.3}, time {:.1}s",
        load_imbalance(&static_r.engine_events),
        static_r.emulation_time_s()
    );
    println!(
        "dynamic x{}    : imbalance {:.3}, time {:.1}s ({} remaps, {} nodes migrated)",
        cfg.epochs,
        load_imbalance(&out.report.engine_events),
        out.report.emulation_time_s(),
        out.remaps_applied,
        out.migrated_nodes
    );

    println!("\npartitions per epoch (nodes per engine):");
    for (i, p) in out.epoch_partitions.iter().enumerate() {
        println!("  epoch {i}: {:?}", p.part_sizes());
    }
    println!(
        "\nThe paper (§6): \"Static partitions are fundamentally limited for\n\
         large emulation if traffic varies widely. Dynamic remapping the\n\
         virtual network during the emulation is the only solution.\""
    );
}
