//! Heterogeneous simulation engines — lifting the §5 limitation ("The
//! MaSSF partitioner currently assumes homogeneous physical resources").
//!
//! One engine of the cluster is 3× faster; compare a capacity-blind
//! PROFILE mapping against one whose partition targets are proportional
//! to engine speed.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use massf_core::prelude::*;

fn main() {
    let caps = vec![3.0, 1.0, 1.0];
    println!("cluster: 3 engines with relative speeds {caps:?}\n");

    let mut results = Vec::new();
    for aware in [false, true] {
        let mut built = Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.5)
            .build();
        let partition = if aware {
            built.study.cfg = built.study.cfg.clone().with_engine_capacities(caps.clone());
            built
                .study
                .map(Approach::Profile, &built.predicted, &built.flows)
        } else {
            // Map blindly, but evaluate on the same lopsided hardware.
            let p = built
                .study
                .map(Approach::Profile, &built.predicted, &built.flows);
            built.study.cfg.engine_capacities = Some(caps.clone());
            p
        };
        let report = built
            .study
            .evaluate(&partition, &built.flows, CostModel::replay());
        results.push((aware, report));
    }

    for (aware, report) in &results {
        let label = if *aware {
            "capacity-aware"
        } else {
            "capacity-blind"
        };
        let share0 = report.engine_events[0] as f64 / report.total_events() as f64;
        println!(
            "{label:15}: network emulation {:.2}s, fast engine carries {:.0}% of events",
            report.emulation_time_s(),
            100.0 * share0
        );
        println!("  {}", report.balance_line());
    }
    let gain = improvement_pct(
        results[0].1.emulation_time_s(),
        results[1].1.emulation_time_s(),
    );
    println!("\ncapacity-aware mapping is {gain:.0}% faster on this cluster —");
    println!("'balance' now means balanced finish times, not balanced event counts.");
}
