//! The parallel substrate in action: run the same emulation sequentially
//! and with one OS thread per simulation engine, verify the results are
//! bit-identical, and report real wall-clock numbers.
//!
//! ```sh
//! cargo run --release --example parallel_engines
//! ```

use massf_core::engine::{run_parallel, run_sequential};
use massf_core::prelude::*;
use std::time::Instant;

fn main() {
    let built = Scenario::new(Topology::TeraGrid, Workload::Scalapack)
        .with_scale(0.3)
        .build();
    let partition = built
        .study
        .map(Approach::Profile, &built.predicted, &built.flows);
    let cfg = EmulationConfig::new(partition.part.clone(), partition.nparts).with_netflow();

    println!(
        "emulating {} flows on {} ({} engines, conservative windows)",
        built.flows.len(),
        built.study.net.summary(),
        partition.nparts
    );

    let t0 = Instant::now();
    let seq = run_sequential(&built.study.net, &built.study.tables, &built.flows, &cfg);
    let t_seq = t0.elapsed();

    let t0 = Instant::now();
    let par = run_parallel(&built.study.net, &built.study.tables, &built.flows, &cfg);
    let t_par = t0.elapsed();

    assert_eq!(
        seq.engine_events, par.engine_events,
        "parallel run diverged!"
    );
    assert_eq!(seq.netflow, par.netflow);
    assert_eq!(seq.rounds, par.rounds);

    println!(
        "\nkernel events      : {} (identical in both modes)",
        seq.total_events()
    );
    println!("delivered packets  : {}", seq.delivered);
    println!("sync rounds        : {}", seq.rounds);
    println!("cross-engine events: {}", seq.remote_messages);
    println!("netflow records    : {}", seq.netflow.len());
    println!(
        "\nreal wall time     : sequential {:.3}s, {} threads {:.3}s",
        t_seq.as_secs_f64(),
        partition.nparts,
        t_par.as_secs_f64()
    );
    println!(
        "modeled 2003 time  : {:.1}s (deterministic cost model)",
        seq.emulation_time_s()
    );
    println!("\nThe conservative window protocol produces bit-identical results");
    println!("regardless of thread interleaving — every event key is unique.");
}
