//! Inside the PROFILE pipeline: run GridNPB on TeraGrid, show the NetFlow
//! profile, the detected load phases (§3.3 clustering), and the
//! repartitioning outcome.
//!
//! ```sh
//! cargo run --release --example grid_workflow
//! ```

use massf_core::mapping::profile::PROFILE_BUCKETS;
use massf_core::mapping::segments::cluster_segments;
use massf_core::mapping::weights::node_time_loads;
use massf_core::prelude::*;

fn main() {
    let built = Scenario::new(Topology::TeraGrid, Workload::GridNpb)
        .with_scale(0.4)
        .build();
    println!(
        "GridNPB (HC + VP + MB workflows) on {}",
        built.study.net.summary()
    );
    println!("application hosts: {:?}\n", built.placement);

    // Step 1: profiling run under the TOP partition, NetFlow on.
    let initial = built
        .study
        .map(Approach::Top, &built.predicted, &built.flows);
    let records = built.study.profile_records(&built.flows, &initial);
    let total_pkts: u64 = records.iter().map(|r| r.packets).sum();
    println!(
        "profiling run: {} NetFlow records across {} routers, {} router-packet sightings",
        records.len(),
        records
            .iter()
            .map(|r| r.router)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        total_pkts
    );

    // Step 2: phase clustering.
    let horizon = records.iter().map(|r| r.last_us).max().unwrap_or(1);
    let bucket_us = (horizon / PROFILE_BUCKETS).max(1);
    let loads = node_time_loads(&built.study.net, &records, bucket_us);
    let segments = cluster_segments(&loads, 16, 3, 3);
    println!(
        "\ndetected {} load phases over {:.1}s of virtual time:",
        segments.len(),
        horizon as f64 / 1e6
    );
    for (i, &(a, b)) in segments.iter().enumerate() {
        let events: u64 = loads
            .iter()
            .map(|row| row[a..b.min(row.len())].iter().sum::<u64>())
            .sum();
        println!(
            "  phase {i}: [{:.1}s, {:.1}s) — {events} node-events",
            a as f64 * bucket_us as f64 / 1e6,
            b as f64 * bucket_us as f64 / 1e6
        );
    }

    // Step 3: repartition and compare.
    let profiled = built
        .study
        .map(Approach::Profile, &built.predicted, &built.flows);
    for (label, partition) in [
        ("TOP (initial)", &initial),
        ("PROFILE (reparted)", &profiled),
    ] {
        let report = built
            .study
            .evaluate(partition, &built.flows, CostModel::live_application());
        println!(
            "\n{label}: imbalance {:.3}, emulation {:.1}s, {} cross-engine events",
            load_imbalance(&report.engine_events),
            report.emulation_time_s(),
            report.remote_messages
        );
        println!("  {}", report.balance_line());
    }
}
