//! Route discovery the PLACE way: traceroute across the emulated TeraGrid,
//! as §3.2 does with the real Linux tool against MaSSF's in-emulator ICMP.
//!
//! ```sh
//! cargo run --release --example traceroute
//! ```

use massf_core::routing::traceroute::{probe_count, subnet_representatives, traceroute};
use massf_core::routing::RoutingTables;
use massf_core::topology::teragrid::teragrid;

fn main() {
    let net = teragrid();
    let tables = RoutingTables::build(&net);
    println!("{}\n", net.summary());

    // A cross-country route: NCSA host -> SDSC host.
    let hosts = net.hosts();
    let (src, dst) = (hosts[0], hosts[35]);
    println!(
        "traceroute {} -> {}",
        net.node(src).name,
        net.node(dst).name
    );
    let hops = traceroute(&tables, src, dst).expect("teragrid is connected");
    for (i, hop) in hops.iter().enumerate() {
        println!(
            "  {:2}  {:18} {:8.3} ms",
            i + 1,
            net.node(hop.node).name,
            hop.rtt_us as f64 / 1000.0
        );
    }
    println!("  ({} probe packets)\n", probe_count(&hops));

    // The §3.2 optimization: one representative per sub-network.
    let reps = subnet_representatives(&net);
    println!("representative endpoints (one per site): ");
    for r in &reps {
        println!("  {}", net.node(*r).name);
    }
    let pairs = reps.len() * (reps.len() - 1) / 2;
    let full = hosts.len() * (hosts.len() - 1) / 2;
    println!(
        "\nroute discovery needs {pairs} traceroutes instead of {full} — a {}x reduction",
        full / pairs
    );
}
