//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses as a
//! random-sampling property-test harness: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`
//! combinators, range and tuple strategies, [`Just`], `any::<T>()`,
//! `prop::collection::vec`, `prop::bool::ANY`, the [`proptest!`] macro,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are sampled from a fixed
//! deterministic seed per test (derived from the test's name), and there
//! is **no shrinking** — a failing case panics with the generated values'
//! debug representation instead.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Why a test case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws fresh ones.
    Reject(&'static str),
    /// An assertion failed (reserved; `prop_assert*` panic directly).
    Fail(String),
}

/// Result type the generated test-case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many `prop_assume!`/filter rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: cases.saturating_mul(256).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(48)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;

    /// Draws one value; `None` when a filter rejected the attempt.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`.
    fn prop_filter_map<U: std::fmt::Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Keeps only values satisfying `f`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy (proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                use rand::Rng;
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                use rand::Rng;
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-range strategy for primitives (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces a strategy over `T`'s whole value range.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                use rand::RngCore;
                Some(rng.next_u64() as $t)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        use rand::RngCore;
        Some(rng.next_u64() & 1 == 1)
    }
}

/// The `prop::` namespace (`proptest::prelude::prop`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Either boolean, uniformly.
        pub const ANY: super::super::Any<bool> = super::super::Any(std::marker::PhantomData);
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec`s with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                use rand::Rng;
                let n = rng.gen_range(self.size.clone());
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    // Give filtered element strategies a few retries
                    // before failing the whole collection draw.
                    let mut drawn = None;
                    for _ in 0..16 {
                        if let Some(v) = self.element.generate(rng) {
                            drawn = Some(v);
                            break;
                        }
                    }
                    out.push(drawn?);
                }
                Some(out)
            }
        }
    }
}

/// Drives one `proptest!`-generated test function.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a seed derived deterministically from
    /// `name` (so every test gets an independent but reproducible
    /// stream).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            config,
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// Runs `body` on `config.cases` generated values.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut body: impl FnMut(S::Value) -> TestCaseResult,
    ) {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            if rejected > self.config.max_global_rejects {
                panic!(
                    "proptest: too many rejected inputs ({} rejects, {} passes)",
                    rejected, passed
                );
            }
            let Some(value) = strategy.generate(&mut self.rng) else {
                rejected += 1;
                continue;
            };
            let repr = format!("{value:?}");
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {msg}\n  inputs: {repr}")
                }
            }
        }
    }
}

/// Declares property tests. See the crate docs; mirrors upstream usage:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands the individual test functions of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&($($strat,)+), |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Rejects the current case; the runner draws new inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond)));
        }
    };
}

/// Asserts inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0i64..100) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..100).contains(&y));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u32..5, 5u32..9)) {
            prop_assert!(a < 5 && (5..9).contains(&b));
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn maps_and_vecs(v in prop::collection::vec(0u8..4, 0..20), n in (2usize..6).prop_map(|k| k * 2)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(n % 2 == 0 && (4..12).contains(&n));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..30).prop_flat_map(|n| (Just(n), 0usize..30).prop_filter_map("idx<n", |(n, i)| if i < n { Some((n, i)) } else { None }))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::{ProptestConfig, TestRunner};
        let collect = |name: &str| {
            let mut out = Vec::new();
            let mut r = TestRunner::new(ProptestConfig::with_cases(10), name);
            r.run(&(0u64..1000,), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(collect("a"), collect("a"));
        assert_ne!(
            collect("a"),
            collect("b"),
            "different tests, different streams"
        );
    }
}
