//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of `rand` 0.8's API the
//! workspace uses: [`RngCore`], [`SeedableRng`] (with the SplitMix64
//! `seed_from_u64` expansion), the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom`] with the
//! Fisher–Yates `shuffle`. Streams are deterministic but are **not**
//! promised to match upstream `rand` bit-for-bit; everything in this
//! workspace only relies on internal reproducibility (same seed, same
//! stream), which this crate guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The backbone of every generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 32]`).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// upstream `rand` documents for this method) and seeds from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `gen_range` can produce uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi + <$t>::EPSILON * hi.abs().max(1.0))
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] under the standard distribution:
/// floats uniform in `[0, 1)`, integers and `bool` over their full range.
pub trait StandardSample {
    /// Draws one standard-distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_sample_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Standard-distribution sample (floats in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffle and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // xorshift so low bits vary too.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(1..20);
            assert!((1..20).contains(&v));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let w: u64 = rng.gen_range(3..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
