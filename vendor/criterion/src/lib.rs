//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — as a plain wall-clock harness. Each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and prints
//! median / mean per-iteration times (plus throughput when declared).
//! There is no statistical analysis, no plotting, and no baseline
//! comparison; numbers are indicative only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Configures the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.default_sample_size, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the work per iteration, enabling a throughput report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size.unwrap_or(20),
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.sample_size.unwrap_or(20),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timed sample per run after a
    /// short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50ms elapse or 3 iterations, whichever first.
        let warm_start = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(f());
            if warm_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    body: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    body(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let mut line = format!(
        "{id:<48} median {:>12}  mean {:>12}  ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles bench functions under one group name (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness CLI flags (e.g. `--bench`).
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
