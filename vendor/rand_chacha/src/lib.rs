//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a real
//! ChaCha stream cipher with 8 rounds used as a deterministic RNG.
//!
//! Same caveat as the vendored `rand`: streams are deterministic and
//! high-quality, but not promised to be bit-identical to upstream
//! `rand_chacha` (the workspace only relies on seed-reproducibility).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds, seedable from 32 bytes or a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state rows 1–2 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (row 3, words 12–13).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce; we run with a zero nonce like the
        // upstream RNG construction.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(0x5eed);
        let mut b = ChaCha8Rng::seed_from_u64(0x5eed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn blocks_advance() {
        // Drawing more than one block's worth of words must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        rng.next_u32();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
