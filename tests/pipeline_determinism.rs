//! The mapping pipeline must be bit-identical at every thread count: the
//! routing-table build, both traffic accumulators, the partitioner's
//! best-of-N search, and the full Scenario pipeline built on them.

use massf_core::mapping::place::foreground_prediction;
use massf_core::mapping::weights::{
    accumulate_measured_with, accumulate_predicted_with, latency_graph,
};
use massf_core::partition::quality::edge_cut;
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::brite::{generate, BriteConfig};
use massf_core::topology::{campus::campus, teragrid::teragrid};

fn nets() -> Vec<(&'static str, Network)> {
    vec![
        ("campus", campus()),
        ("teragrid", teragrid()),
        (
            "brite",
            generate(&BriteConfig {
                routers: 40,
                hosts: 20,
                ..BriteConfig::paper_brite()
            }),
        ),
    ]
}

#[test]
fn routing_tables_identical_across_thread_counts() {
    for (name, net) in nets() {
        let serial = RoutingTables::build_with(&net, Parallelism::serial());
        for threads in [2, 4, 7] {
            let parallel = RoutingTables::build_with(&net, Parallelism::new(threads));
            assert_eq!(
                serial, parallel,
                "{name} tables differ at {threads} threads"
            );
        }
    }
}

#[test]
fn predicted_accumulators_are_bit_identical() {
    for (name, net) in nets() {
        let tables = RoutingTables::build(&net);
        let pred = foreground_prediction(&net, &net.hosts());
        let (link1, node1) = accumulate_predicted_with(&net, &tables, &pred, Parallelism::serial());
        let (link4, node4) = accumulate_predicted_with(&net, &tables, &pred, Parallelism::new(4));
        // f64 sums must match to the bit, not within an epsilon: the
        // blocked reduction fixes the association order.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&link1), bits(&link4), "{name} link weights differ");
        assert_eq!(bits(&node1), bits(&node4), "{name} node weights differ");
    }
}

#[test]
fn measured_accumulators_identical_on_profiled_records() {
    for (topo, wl) in [
        (Topology::Campus, Workload::Scalapack),
        (Topology::TeraGrid, Workload::GridNpb),
        (Topology::Brite, Workload::Scalapack),
    ] {
        let built = Scenario::new(topo, wl)
            .with_scale(0.08)
            .without_background()
            .build();
        let initial = built
            .study
            .map(Approach::Top, &built.predicted, &built.flows);
        let records = built.study.profile_records(&built.flows, &initial);
        assert!(
            !records.is_empty(),
            "{topo:?} profiling produced no records"
        );
        let (link1, node1) = accumulate_measured_with(
            &built.study.net,
            &built.study.tables,
            &records,
            Parallelism::serial(),
        );
        let (link4, node4) = accumulate_measured_with(
            &built.study.net,
            &built.study.tables,
            &records,
            Parallelism::new(4),
        );
        assert_eq!(link1, link4, "{topo:?} measured link loads differ");
        assert_eq!(node1, node4, "{topo:?} measured node loads differ");
    }
}

#[test]
fn partition_kway_identical_across_thread_counts() {
    for (name, net) in nets() {
        let g = latency_graph(&net);
        let serial = partition_kway(&g, &PartitionConfig::new(4));
        for threads in [2, 4, 7] {
            let cfg = PartitionConfig::new(4).with_threads(Parallelism::new(threads));
            let parallel = partition_kway(&g, &cfg);
            assert_eq!(
                serial, parallel,
                "{name} partition differs at {threads} threads"
            );
            assert_eq!(
                edge_cut(&g, &serial.part),
                edge_cut(&g, &parallel.part),
                "{name} cut differs at {threads} threads"
            );
        }
    }
}

#[test]
fn full_pipeline_identical_across_thread_counts() {
    for approach in Approach::ALL {
        let serial = Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.08)
            .without_background()
            .with_threads(1)
            .build();
        let threaded = Scenario::new(Topology::Campus, Workload::Scalapack)
            .with_scale(0.08)
            .without_background()
            .with_threads(4)
            .build();
        let p1 = serial.study.map(approach, &serial.predicted, &serial.flows);
        let p4 = threaded
            .study
            .map(approach, &threaded.predicted, &threaded.flows);
        assert_eq!(p1, p4, "{approach:?} partition depends on thread count");
    }
}
