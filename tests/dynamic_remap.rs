//! Dynamic remapping (§6) integration checks: on drifting-hotspot traffic
//! the dynamic mapper must beat every static mapping; migration must never
//! change what is emulated.

use massf_core::engine::MigrationCost;
use massf_core::mapping::dynamic::{run_dynamic, DynamicConfig};
use massf_core::prelude::*;
use massf_core::topology::NodeId;
use massf_core::traffic::hotspot::{self, HotspotConfig};
use massf_metrics::timeseries::mean_active_imbalance;

fn campus_building_groups(net: &Network) -> Vec<Vec<NodeId>> {
    let mut groups: std::collections::BTreeMap<String, Vec<NodeId>> = Default::default();
    for h in net.hosts() {
        let (router, _) = net.neighbors(h)[0];
        let key = net
            .node(router)
            .name
            .split('-')
            .next()
            .unwrap_or("x")
            .to_string();
        groups.entry(key).or_default().push(h);
    }
    groups.into_values().collect()
}

fn hotspot_setup() -> (MappingStudy, Vec<FlowSpec>) {
    let net = Topology::Campus.build();
    let groups = campus_building_groups(&net);
    let cfg = HotspotConfig {
        phases: 4,
        phase_len_us: 5_000_000,
        flows_per_phase: 45,
        ..HotspotConfig::drift_over(groups)
    };
    let flows = hotspot::generate(&cfg);
    let mut study = MappingStudy::new(net, MapperConfig::new(3));
    study.counter_window_us = 500_000;
    (study, flows)
}

#[test]
fn dynamic_beats_static_on_drifting_hotspot() {
    let (study, flows) = hotspot_setup();
    let dyn_cfg = DynamicConfig {
        epochs: 16,
        migration: MigrationCost::default(),
        cost: CostModel::default(),
        ..Default::default()
    };
    let dynamic = run_dynamic(&study, &flows, &dyn_cfg);
    assert!(dynamic.remaps_applied >= 2, "hotspot must trigger remaps");

    let dyn_fine = mean_active_imbalance(&dynamic.report.window_series, 32);
    for a in Approach::ALL {
        let p = study.map(a, &[], &flows);
        let r = study.evaluate(&p, &flows, CostModel::default());
        let static_fine = mean_active_imbalance(&r.window_series, 32);
        assert!(
            dyn_fine < static_fine,
            "dynamic fine-grained {dyn_fine:.3} must beat static {} {static_fine:.3}",
            a.label()
        );
    }
}

#[test]
fn dynamic_net_time_beats_static_profile_on_hotspot() {
    let (study, flows) = hotspot_setup();
    let p = study.map(Approach::Profile, &[], &flows);
    let static_r = study.evaluate(&p, &flows, CostModel::default());
    let dyn_cfg = DynamicConfig {
        epochs: 16,
        migration: MigrationCost::default(),
        cost: CostModel::default(),
        ..Default::default()
    };
    let dynamic = run_dynamic(&study, &flows, &dyn_cfg);
    assert!(
        dynamic.report.emulation_time_s() < static_r.emulation_time_s() * 1.02,
        "dynamic {:.2}s should not lose to static PROFILE {:.2}s",
        dynamic.report.emulation_time_s(),
        static_r.emulation_time_s()
    );
}

#[test]
fn migration_preserves_emulation_results() {
    let (study, flows) = hotspot_setup();
    let injected: u64 = flows.iter().map(|f| f.packets).sum();
    // Static reference for totals.
    let top = study.map(Approach::Top, &[], &flows);
    let static_r = study.evaluate(&top, &flows, CostModel::default());
    let dyn_cfg = DynamicConfig {
        epochs: 8,
        cost: CostModel::default(),
        ..Default::default()
    };
    let dynamic = run_dynamic(&study, &flows, &dyn_cfg);
    assert_eq!(dynamic.report.delivered, injected);
    assert_eq!(dynamic.report.dropped, 0);
    assert_eq!(
        dynamic.report.total_events(),
        static_r.total_events(),
        "migration must not change the discrete events"
    );
    assert_eq!(dynamic.report.latency_sum_us, static_r.latency_sum_us);
}
