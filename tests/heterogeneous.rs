//! Heterogeneous simulation engines — the extension the paper's §5 flags
//! as a current limitation ("The MaSSF partitioner currently assumes
//! homogeneous physical resources for network simulation").
//!
//! The partitioner accepts per-part target fractions and the cost model
//! scales per-engine event processing by CPU speed; a capacity-aware
//! mapping must beat a capacity-blind one on a lopsided cluster.

use massf_core::partition::quality::target_balance;
use massf_core::prelude::*;

#[test]
fn partitioner_honours_target_fractions() {
    let net = Topology::Campus.build();
    let g = net.to_unit_graph();
    let caps = [3.0, 1.0, 1.0];
    let cfg = PartitionConfig::new(3).with_capacities(&caps);
    let p = partition_kway(&g, &cfg);
    // Part 0 should get roughly 60% of the vertices.
    let sizes = p.part_sizes();
    let share0 = sizes[0] as f64 / g.nvtxs() as f64;
    assert!(
        (0.45..=0.75).contains(&share0),
        "part 0 got {share0:.2} of vertices, wanted ~0.6 ({sizes:?})"
    );
    let tb = target_balance(&g, &p.part, &[0.6, 0.2, 0.2], 0);
    assert!(tb <= 1.35, "target balance {tb}");
}

#[test]
fn uniform_fractions_match_default() {
    let net = Topology::Campus.build();
    let g = net.to_unit_graph();
    let default = partition_kway(&g, &PartitionConfig::new(3));
    let uniform = partition_kway(
        &g,
        &PartitionConfig::new(3).with_capacities(&[1.0, 1.0, 1.0]),
    );
    assert_eq!(
        default, uniform,
        "uniform capacities must equal the default"
    );
}

#[test]
fn capacity_aware_mapping_beats_blind_on_lopsided_cluster() {
    // One engine is 3x faster. The capacity-aware PROFILE mapping should
    // finish (modeled) faster than the capacity-blind one evaluated on the
    // same lopsided hardware.
    let caps = vec![3.0, 1.0, 1.0];

    let mut blind = Scenario::new(Topology::Campus, Workload::Scalapack)
        .with_scale(0.2)
        .without_background()
        .build();
    // Evaluate the *blind* partition on lopsided hardware: speeds set, but
    // partition targets stay uniform.
    let blind_partition = blind
        .study
        .map(Approach::Profile, &blind.predicted, &blind.flows);
    blind.study.cfg.engine_capacities = Some(caps.clone());
    let blind_report = blind
        .study
        .evaluate(&blind_partition, &blind.flows, CostModel::replay());

    let mut aware = Scenario::new(Topology::Campus, Workload::Scalapack)
        .with_scale(0.2)
        .without_background()
        .build();
    aware.study.cfg = aware.study.cfg.clone().with_engine_capacities(caps);
    let aware_partition = aware
        .study
        .map(Approach::Profile, &aware.predicted, &aware.flows);
    let aware_report = aware
        .study
        .evaluate(&aware_partition, &aware.flows, CostModel::replay());

    assert_eq!(blind_report.delivered, aware_report.delivered);
    assert!(
        aware_report.emulation_time_s() <= blind_report.emulation_time_s() * 1.02,
        "capacity-aware {:.2}s should not lose to blind {:.2}s",
        aware_report.emulation_time_s(),
        blind_report.emulation_time_s()
    );
    // The fast engine should carry more events under the aware mapping.
    let aware_share0 = aware_report.engine_events[0] as f64 / aware_report.total_events() as f64;
    let blind_share0 = blind_report.engine_events[0] as f64 / blind_report.total_events() as f64;
    assert!(
        aware_share0 > blind_share0,
        "fast engine share: aware {aware_share0:.2} vs blind {blind_share0:.2}"
    );
}

#[test]
fn speeds_do_not_change_emulation_results() {
    // Engine speeds are a wall-clock model concern only; the discrete
    // events must be identical.
    let built = Scenario::new(Topology::Campus, Workload::GridNpb)
        .with_scale(0.1)
        .without_background()
        .build();
    let p = built
        .study
        .map(Approach::Top, &built.predicted, &built.flows);
    let base_cfg = EmulationConfig::new(p.part.clone(), p.nparts);
    let fast_cfg =
        EmulationConfig::new(p.part.clone(), p.nparts).with_engine_speeds(vec![5.0, 1.0, 0.5]);
    let a = massf_core::engine::run_sequential(
        &built.study.net,
        &built.study.tables,
        &built.flows,
        &base_cfg,
    );
    let b = massf_core::engine::run_sequential(
        &built.study.net,
        &built.study.tables,
        &built.flows,
        &fast_cfg,
    );
    assert_eq!(a.engine_events, b.engine_events);
    assert_eq!(a.latency_sum_us, b.latency_sum_us);
    assert_eq!(a.rounds, b.rounds);
    assert!(a.wall.total_us != b.wall.total_us, "wall model must differ");
}
