//! The parallel substrate must be bit-identical to the sequential
//! reference on real scenarios, for every approach and topology.

use massf_core::engine::{run_parallel, run_sequential};
use massf_core::prelude::*;

fn check(topo: Topology, wl: Workload, approach: Approach) {
    let built = Scenario::new(topo, wl)
        .with_scale(0.08)
        .without_background()
        .build();
    let partition = built.study.map(approach, &built.predicted, &built.flows);
    let cfg = EmulationConfig::new(partition.part.clone(), partition.nparts).with_netflow();
    let seq = run_sequential(&built.study.net, &built.study.tables, &built.flows, &cfg);
    let par = run_parallel(&built.study.net, &built.study.tables, &built.flows, &cfg);
    assert_eq!(
        seq.engine_events, par.engine_events,
        "{topo:?}/{wl:?}/{approach:?}"
    );
    assert_eq!(seq.delivered, par.delivered);
    assert_eq!(seq.dropped, par.dropped);
    assert_eq!(seq.latency_sum_us, par.latency_sum_us);
    assert_eq!(seq.remote_messages, par.remote_messages);
    assert_eq!(seq.rounds, par.rounds);
    assert_eq!(seq.virtual_end_us, par.virtual_end_us);
    assert_eq!(seq.netflow, par.netflow);
    assert_eq!(seq.window_series, par.window_series);
    assert!((seq.wall.total_us - par.wall.total_us).abs() < 1e-6);
}

#[test]
fn campus_all_approaches() {
    for a in Approach::ALL {
        check(Topology::Campus, Workload::Scalapack, a);
    }
}

#[test]
fn teragrid_gridnpb_profile() {
    check(Topology::TeraGrid, Workload::GridNpb, Approach::Profile);
}

#[test]
fn brite_scalapack_top() {
    check(Topology::Brite, Workload::Scalapack, Approach::Top);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Thread scheduling must not leak into results: run the parallel
    // executor several times and demand identical reports.
    let built = Scenario::new(Topology::Campus, Workload::GridNpb)
        .with_scale(0.1)
        .without_background()
        .build();
    let partition = built
        .study
        .map(Approach::Place, &built.predicted, &built.flows);
    let cfg = EmulationConfig::new(partition.part.clone(), partition.nparts);
    let first = run_parallel(&built.study.net, &built.study.tables, &built.flows, &cfg);
    for _ in 0..4 {
        let again = run_parallel(&built.study.net, &built.study.tables, &built.flows, &cfg);
        assert_eq!(first.engine_events, again.engine_events);
        assert_eq!(first.latency_sum_us, again.latency_sum_us);
        assert_eq!(first.rounds, again.rounds);
    }
}
