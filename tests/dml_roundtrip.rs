//! The network description format must round-trip every generated topology
//! and preserve routing behaviour exactly.

use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::dml;

#[test]
fn all_paper_topologies_roundtrip() {
    for topo in [
        Topology::Campus,
        Topology::TeraGrid,
        Topology::Brite,
        Topology::BriteScaleup,
    ] {
        let net = topo.build();
        let text = dml::write(&net);
        let back = dml::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", topo.label()));
        assert_eq!(net, back, "{} did not round-trip", topo.label());
    }
}

#[test]
fn parsed_network_routes_identically() {
    let net = Topology::Campus.build();
    let parsed = dml::parse(&dml::write(&net)).expect("roundtrip");
    let t1 = RoutingTables::build(&net);
    let t2 = RoutingTables::build(&parsed);
    let hosts = net.hosts();
    for &a in hosts.iter().take(8) {
        for &b in hosts.iter().rev().take(8) {
            assert_eq!(t1.path(a, b), t2.path(a, b));
            assert_eq!(t1.latency_us(a, b), t2.latency_us(a, b));
        }
    }
}

#[test]
fn description_is_humanly_stable() {
    // The file should be line-oriented with one node/link per line, so
    // diffs stay reviewable.
    let net = Topology::Campus.build();
    let text = dml::write(&net);
    let nodes = text.lines().filter(|l| l.starts_with("node ")).count();
    let links = text.lines().filter(|l| l.starts_with("link ")).count();
    assert_eq!(nodes, net.node_count());
    assert_eq!(links, net.link_count());
}
