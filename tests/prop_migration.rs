//! Property-based tests for the stepping/migration substrate: migrating
//! nodes at arbitrary instants, to arbitrary valid partitions, must never
//! change the discrete outcome of the emulation.

use massf_core::engine::stepping::{MigrationCost, SteppableEmulation};
use massf_core::engine::{run_sequential, EmulationConfig};
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::brite::{generate, BriteConfig, GrowthModel};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn small_net(seed: u64) -> Network {
    generate(&BriteConfig {
        routers: 10,
        hosts: 8,
        model: GrowthModel::BarabasiAlbert { m: 2 },
        seed,
        ..BriteConfig::paper_brite()
    })
}

fn random_flows(net: &Network, seed: u64, count: usize) -> Vec<FlowSpec> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let hosts = net.hosts();
    (0..count)
        .filter_map(|_| {
            let src = hosts[rng.gen_range(0..hosts.len())];
            let dst = hosts[rng.gen_range(0..hosts.len())];
            (src != dst).then(|| FlowSpec {
                src,
                dst,
                start_us: rng.gen_range(0..1_500_000),
                packets: rng.gen_range(1..30),
                bytes: rng.gen_range(200..45_000),
                packet_interval_us: rng.gen_range(1..1_500),
                window: if rng.gen_bool(0.3) {
                    Some(rng.gen_range(1..6))
                } else {
                    None
                },
            })
        })
        .collect()
}

fn random_partition_vec<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<u32> {
    let mut part: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k) as u32).collect();
    for p in 0..k {
        part[p % n] = p as u32; // every engine owns something
    }
    part
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn migrations_never_change_the_emulation(
        net_seed in any::<u64>(),
        flow_seed in any::<u64>(),
        remap_seed in any::<u64>(),
        k in 2usize..4,
        nremaps in 1usize..4,
    ) {
        let net = small_net(net_seed);
        let tables = RoutingTables::build(&net);
        let flows = random_flows(&net, flow_seed, 15);
        prop_assume!(!flows.is_empty());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(remap_seed);
        let n = net.node_count();

        // Reference: a plain batch run under the initial partition.
        let initial = random_partition_vec(n, k, &mut rng);
        let reference = run_sequential(
            &net,
            &tables,
            &flows,
            &EmulationConfig::new(initial.clone(), k),
        );

        // Stepped run with random mid-flight remaps.
        let horizon = massf_core::traffic::flow::horizon_us(&flows) + 1;
        let mut emu = SteppableEmulation::new(
            &net,
            &tables,
            &flows,
            EmulationConfig::new(initial, k),
        );
        for _ in 0..nremaps {
            let t = rng.gen_range(1..horizon.max(2));
            emu.run_until(t);
            let next = random_partition_vec(n, k, &mut rng);
            emu.repartition(next, MigrationCost::default());
        }
        emu.run_to_completion();
        let report = emu.finish();

        // Discrete outcomes are partition-independent, hence also
        // migration-independent.
        prop_assert_eq!(report.delivered, reference.delivered);
        prop_assert_eq!(report.dropped, reference.dropped);
        prop_assert_eq!(report.total_events(), reference.total_events());
        prop_assert_eq!(report.latency_sum_us, reference.latency_sum_us);
        prop_assert_eq!(report.virtual_end_us, reference.virtual_end_us);
    }

    #[test]
    fn stepping_in_arbitrary_increments_matches_batch(
        net_seed in any::<u64>(),
        flow_seed in any::<u64>(),
        step_us in 1_000u64..400_000,
    ) {
        let net = small_net(net_seed);
        let tables = RoutingTables::build(&net);
        let flows = random_flows(&net, flow_seed, 12);
        prop_assume!(!flows.is_empty());
        let part = vec![0u32; net.node_count()];
        let cfg = EmulationConfig::new(part, 1).with_netflow();

        let batch = run_sequential(&net, &tables, &flows, &cfg);
        let mut emu = SteppableEmulation::new(&net, &tables, &flows, cfg);
        let mut t = step_us;
        while !emu.finished() {
            emu.run_until(t);
            t += step_us;
        }
        let stepped = emu.finish();
        prop_assert_eq!(stepped.engine_events, batch.engine_events);
        prop_assert_eq!(stepped.delivered, batch.delivered);
        prop_assert_eq!(stepped.latency_sum_us, batch.latency_sum_us);
        prop_assert_eq!(stepped.netflow, batch.netflow);
    }
}
