//! `massf srclint` over this workspace: the tool must land clean on its
//! own codebase (zero findings; every allow annotation matching a real
//! site), the JSON report is golden-pinned, and repeated runs are
//! byte-identical. Also covers the CLI failure path on a dirty tree and
//! the `massf check --list-passes` catalog.
//!
//! Regenerate the golden with `MASSF_BLESS=1 cargo test --test
//! srclint_workspace`.

use massf_repro::cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Compares `actual` against the golden at `path`, rewriting the golden
/// instead when `MASSF_BLESS=1` is set.
fn assert_golden(actual: &str, path: &str) {
    if std::env::var_os("MASSF_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    assert_eq!(actual, golden, "output drifted from {path}");
}

#[test]
fn workspace_scan_is_clean_even_under_deny_warnings() {
    let report = cli::run(&args(&["srclint", "--deny-warnings"]))
        .expect("the workspace must pass its own determinism lint");
    assert!(
        report.contains("srclint: 0 error(s), 0 warning(s), 0 note(s)"),
        "unexpected summary:\n{report}"
    );
}

#[test]
fn workspace_json_matches_golden_and_is_byte_identical() {
    let run = || cli::run(&args(&["srclint", "--format", "json"])).expect("clean workspace scan");
    let j1 = run();
    let j2 = run();
    assert_eq!(j1, j2, "repeated scans must be byte-identical");
    assert_golden(&j1, "tests/golden/srclint_workspace.json");
}

#[test]
fn dirty_tree_fails_with_the_report_as_the_error() {
    // A scratch workspace with one hazard; the command must refuse and
    // carry the rendered report in the error.
    let root = std::env::temp_dir().join(format!("massf-srclint-{}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch workspace");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .expect("write dirty file");

    let err = cli::run(&args(&["srclint", root.to_str().expect("utf-8 temp path")]))
        .expect_err("a wall-clock read outside massf-obs must fail the scan");
    assert!(err.0.contains("error[SA002]"), "report:\n{}", err.0);
    assert!(err.0.contains("1 error(s)"), "report:\n{}", err.0);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn list_passes_covers_both_catalogs() {
    let human = cli::run(&args(&["check", "--list-passes"])).expect("catalog renders");
    for code in ["MC001", "MC020", "SA000", "SA007"] {
        assert!(human.contains(code), "missing {code}:\n{human}");
    }
    assert!(human.contains("20 scenario/artifact passes (MC), 8 source passes (SA)"));

    let json = cli::run(&args(&["check", "--list-passes", "--format", "json"]))
        .expect("catalog renders as JSON");
    let j2 = cli::run(&args(&["check", "--list-passes", "--format", "json"])).unwrap();
    assert_eq!(json, j2, "catalog JSON must be byte-identical across runs");
    assert!(json.contains("\"tool\": \"massf-check\""));
    assert!(json.contains("\"code\": \"MC013\""));
    assert!(json.contains("\"family\": \"source\""));
    assert!(json.contains("\"severity\": \"warning\""));
    // 28 pass objects: 20 MC + 8 SA.
    assert_eq!(json.matches("\"code\":").count(), 28);
}

#[test]
fn srclint_rejects_unknown_flags_and_extra_positionals() {
    let err = cli::run(&args(&["srclint", "--threads", "4"])).expect_err("unknown flag");
    assert!(err.0.contains("unknown flag"), "{}", err.0);
    let err = cli::run(&args(&["srclint", "a", "b"])).expect_err("two roots");
    assert!(err.0.contains("usage: massf srclint"), "{}", err.0);
}
