//! Golden-file and refusal tests for the post-pipeline artifact audit
//! (MC013–MC018): a deliberately broken partition rendered through
//! `massf-lint`, a corrupted trace fixture driven through `massf check`,
//! and byte-determinism of the audit report across `--threads`.
//!
//! Regenerate the goldens with `MASSF_BLESS=1 cargo test --test
//! audit_diagnostics` after an intentional output change.

use massf_lint::{lint_artifacts, render, ArtifactInput};
use massf_partition::Partitioning;
use massf_repro::cli;
use massf_topology::dml;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Compares `actual` against the golden at `path`, rewriting the golden
/// instead when `MASSF_BLESS=1` is set.
fn assert_golden(actual: &str, path: &str) {
    if std::env::var_os("MASSF_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    assert_eq!(actual, golden, "output drifted from {path}");
}

/// A six-node line with low-latency cut links, partitioned badly on
/// purpose: part 1 is empty (Error), part 0 is split into two fragments
/// (Note), every cut link sits under the 50 µs lookahead hazard (Warn),
/// and the capacity vector has the wrong length for 3 engines (Error).
fn broken_partition_audit() -> massf_lint::Diagnostics {
    let net = dml::parse(
        "node 0 router \"r0\" as 0\n\
         node 1 router \"r1\" as 0\n\
         node 2 router \"r2\" as 0\n\
         node 3 router \"r3\" as 0\n\
         node 4 host \"h0\" as 0\n\
         node 5 host \"h1\" as 0\n\
         link 0 1 bw 100 lat 20\n\
         link 1 2 bw 100 lat 20\n\
         link 2 3 bw 100 lat 20\n\
         link 3 4 bw 100 lat 5\n\
         link 3 5 bw 100 lat 5\n",
    )
    .expect("fixture DML parses");
    let partition = Partitioning {
        part: vec![0, 2, 0, 2, 2, 2],
        nparts: 3,
    };
    let caps = [1.0, 2.0];
    lint_artifacts(
        &ArtifactInput::new(&net)
            .with_engines(3)
            .with_partition(&partition)
            .with_capacities(&caps),
    )
}

#[test]
fn broken_partition_human_report_matches_golden() {
    let diags = broken_partition_audit();
    assert!(diags.has_errors(), "{}", diags.summary_line());
    assert_golden(
        &render::human(&diags),
        "tests/golden/broken_partition_audit.txt",
    );
}

#[test]
fn broken_partition_json_report_matches_golden() {
    assert_golden(
        &render::json(&broken_partition_audit()),
        "tests/golden/broken_partition_audit.json",
    );
}

#[test]
fn corrupt_trace_human_report_matches_golden() {
    // The fixture is warning-dirty but error-free, so the check succeeds
    // and the full report is the stdout text.
    let report = cli::run(&args(&["check", "tests/fixtures/corrupt_trace.txt"]))
        .expect("warnings alone must not fail the check");
    assert_golden(&report, "tests/golden/corrupt_trace_check.txt");
}

#[test]
fn corrupt_trace_json_report_matches_golden() {
    let report = cli::run(&args(&[
        "check",
        "tests/fixtures/corrupt_trace.txt",
        "--format",
        "json",
    ]))
    .expect("warnings alone must not fail the check");
    assert_golden(&report, "tests/golden/corrupt_trace_check.json");
}

#[test]
fn corrupt_trace_fails_under_deny_warnings() {
    let e = cli::run(&args(&[
        "check",
        "tests/fixtures/corrupt_trace.txt",
        "--deny-warnings",
    ]))
    .expect_err("--deny-warnings must promote the MC016 warning");
    assert!(e.0.contains("MC016"), "{}", e.0);
}

#[test]
fn audit_report_is_byte_identical_across_threads() {
    let report = |threads: &str| {
        cli::run(&args(&[
            "check",
            "examples/scenarios/campus.dml",
            "--engines",
            "3",
            "--audit",
            "--format",
            "json",
            "--threads",
            threads,
        ]))
        .expect("campus audit is error-free")
    };
    let base = report("1");
    for threads in ["2", "4"] {
        assert_eq!(
            base,
            report(threads),
            "audit report varies at --threads {threads}"
        );
    }
}

#[test]
fn check_audits_a_capacity_vector() {
    // A mismatched --capacities vector is an MC017 Error through the CLI.
    let e = cli::run(&args(&[
        "check",
        "examples/scenarios/campus.dml",
        "--engines",
        "3",
        "--capacities",
        "1.0,2.0",
    ]))
    .expect_err("a 2-entry vector for 3 engines must fail the audit");
    assert!(e.0.contains("MC017"), "{}", e.0);
    // A well-formed vector audits clean of errors (and implies --audit:
    // the artifact passes run, so the report shows all 20 passes).
    let ok = cli::run(&args(&[
        "check",
        "examples/scenarios/campus.dml",
        "--engines",
        "3",
        "--capacities",
        "1.0,1.0,2.0",
    ]))
    .expect("a feasible vector must pass");
    assert!(ok.contains("20 passes run"), "{ok}");
}

#[test]
fn record_refuses_an_empty_schedule() {
    // `record` audits the trace text before writing: a spec that
    // generates no flows (zero sessions is only a preflight Warn) is the
    // MC016 empty-trace Error, and no file appears on disk.
    let dir = std::env::temp_dir();
    let spec = dir.join(format!("massf_audit_empty_spec_{}.txt", std::process::id()));
    let out = dir.join(format!("massf_audit_empty_{}.trace", std::process::id()));
    std::fs::write(&spec, "traffic { name CBR\n sessions 0 }").unwrap();
    let e = cli::run(&args(&[
        "record",
        "examples/scenarios/campus.dml",
        "--traffic",
        spec.to_str().unwrap(),
        "--duration-s",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]))
    .expect_err("an empty recording must refuse");
    assert!(e.0.contains("artifact audit failed"), "{}", e.0);
    assert!(e.0.contains("MC016"), "{}", e.0);
    assert!(!out.exists(), "no trace file may be written on refusal");
    let _ = std::fs::remove_file(&spec);
}
