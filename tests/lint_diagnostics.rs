//! Golden-file and refusal tests for the `massf check` preflight
//! diagnostics (the `massf-lint` crate driven through the CLI).
//!
//! The golden reports live in `tests/golden/` and were produced from
//! `tests/fixtures/broken.dml` + `tests/fixtures/broken_cbr.txt`: a
//! disconnected topology with a near-zero-latency core link and
//! oversubscribed 1 Mbps host uplinks. Reports must match byte for byte —
//! the JSON renderer is the machine interface and must be deterministic
//! across runs and `--threads` settings.

use massf_repro::cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Runs `massf check` on the broken fixture and returns the report
/// (which arrives as an `Err` because the fixture has Error findings).
fn check_broken(extra: &[&str]) -> String {
    let mut a = vec![
        "check",
        "tests/fixtures/broken.dml",
        "--engines",
        "2",
        "--traffic",
        "tests/fixtures/broken_cbr.txt",
    ];
    a.extend_from_slice(extra);
    cli::run(&args(&a))
        .expect_err("broken fixture must fail the check")
        .0
}

#[test]
fn broken_fixture_matches_human_golden() {
    let report = check_broken(&[]);
    let golden = include_str!("golden/broken_check.txt");
    assert_eq!(
        report, golden,
        "human report drifted from tests/golden/broken_check.txt"
    );
}

#[test]
fn broken_fixture_matches_json_golden() {
    let report = check_broken(&["--format", "json"]);
    let golden = include_str!("golden/broken_check.json");
    assert_eq!(
        report, golden,
        "JSON report drifted from tests/golden/broken_check.json"
    );
}

#[test]
fn json_report_is_byte_identical_across_runs_and_threads() {
    let base = check_broken(&["--format", "json"]);
    for threads in ["1", "2", "8"] {
        let again = check_broken(&["--format", "json", "--threads", threads]);
        assert_eq!(base, again, "JSON report varies at --threads {threads}");
    }
}

#[test]
fn broken_fixture_reports_the_planted_codes() {
    let report = check_broken(&["--format", "json"]);
    for code in ["MC001", "MC003", "MC004", "MC005"] {
        assert!(report.contains(code), "missing {code} in:\n{report}");
    }
    // The planted defects are errors + warnings only.
    assert!(report.contains("\"errors\": 2"), "{report}");
    assert!(report.contains("\"warnings\": 5"), "{report}");
}

#[test]
fn partition_refuses_broken_scenario() {
    let e = cli::run(&args(&[
        "partition",
        "tests/fixtures/broken.dml",
        "--engines",
        "2",
    ]))
    .expect_err("partition must refuse a disconnected network");
    assert!(e.0.contains("preflight check failed"), "{}", e.0);
    assert!(e.0.contains("MC001"), "{}", e.0);
}

#[test]
fn run_refuses_broken_scenario() {
    let e = cli::run(&args(&[
        "run",
        "tests/fixtures/broken.dml",
        "--engines",
        "2",
        "--traffic",
        "tests/fixtures/broken_cbr.txt",
        "--duration-s",
        "1",
    ]))
    .expect_err("run must refuse a disconnected network");
    assert!(e.0.contains("preflight check failed"), "{}", e.0);
    assert!(e.0.contains("MC001"), "{}", e.0);
}

#[test]
fn replay_refuses_broken_scenario() {
    // Record a trace on a healthy network, then replay it against the
    // broken one: the trace check (which validates the trace against the
    // replay network) must reject before any emulation starts.
    let dir = std::env::temp_dir().join("massf_lint_diag_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.txt");
    let trace = trace.to_str().unwrap();
    cli::run(&args(&[
        "record",
        "examples/scenarios/campus.dml",
        "--traffic",
        "examples/scenarios/cbr.txt",
        "--duration-s",
        "1",
        "--out",
        trace,
    ]))
    .expect("record on the healthy campus network must succeed");
    let e = cli::run(&args(&[
        "replay",
        "tests/fixtures/broken.dml",
        trace,
        "--engines",
        "2",
    ]))
    .expect_err("replay must refuse a disconnected network");
    assert!(e.0.contains("trace check failed"), "{}", e.0);
    assert!(e.0.contains("MC001"), "{}", e.0);
}

#[test]
fn example_scenarios_check_clean_under_deny_warnings() {
    // Mirrors the CI `check` job: every shipped example scenario must be
    // free of errors *and* warnings at its documented engine count.
    for (dml, engines, spec) in [
        (
            "examples/scenarios/campus.dml",
            "3",
            "examples/scenarios/cbr.txt",
        ),
        (
            "examples/scenarios/teragrid.dml",
            "5",
            "examples/scenarios/http.txt",
        ),
        (
            "examples/scenarios/brite.dml",
            "8",
            "examples/scenarios/onoff.txt",
        ),
    ] {
        let out = cli::run(&args(&[
            "check",
            dml,
            "--engines",
            engines,
            "--traffic",
            spec,
            "--deny-warnings",
        ]))
        .unwrap_or_else(|e| panic!("{dml} failed the check:\n{}", e.0));
        assert!(out.contains("0 error(s), 0 warning(s)"), "{dml}: {out}");
    }
}
