//! Window/ACK-clocked transport (TCP-like) integration checks: ACK
//! dynamics, RTT sensitivity, determinism across engines, and conservation.

use massf_core::engine::{run_parallel, run_sequential, EmulationConfig};
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::Network;

/// host0 - r0 ----(wan)---- r1 - host1, 20 ms WAN.
fn dumbbell() -> Network {
    let mut net = Network::new();
    let h0 = net.add_host("h0", 0);
    let r0 = net.add_router("r0", 0);
    let r1 = net.add_router("r1", 1);
    let h1 = net.add_host("h1", 1);
    net.add_link(h0, r0, 100.0, 100);
    net.add_link(r0, r1, 45.0, 20_000);
    net.add_link(r1, h1, 100.0, 100);
    net
}

fn windowed_flow(packets: u64, window: u32) -> FlowSpec {
    FlowSpec {
        src: 0,
        dst: 3,
        start_us: 0,
        packets,
        bytes: packets * 1500,
        packet_interval_us: 10,
        window: None,
    }
    .with_window(window)
}

#[test]
fn all_data_packets_delivered() {
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1);
    let r = run_sequential(&net, &tables, &[windowed_flow(40, 4)], &cfg);
    assert_eq!(r.delivered, 40, "every data packet must arrive");
    assert_eq!(r.dropped, 0);
    // ACKs inflate kernel events: each data packet crosses 3 hops + inject
    // (4 events), each ACK crosses 3 hops (3 events, no inject event).
    assert_eq!(r.total_events(), 40 * 4 + 40 * 3);
}

#[test]
fn stop_and_wait_is_rtt_bound() {
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1);
    // Window 1: one packet per round trip (~40.5 ms each).
    let w1 = run_sequential(&net, &tables, &[windowed_flow(10, 1)], &cfg);
    // Window 16 >= packets: pure burst, one RTT total plus serialization.
    let w16 = run_sequential(&net, &tables, &[windowed_flow(10, 16)], &cfg);
    assert!(
        w1.virtual_end_us > 5 * w16.virtual_end_us,
        "stop-and-wait {}µs should be many RTTs slower than burst {}µs",
        w1.virtual_end_us,
        w16.virtual_end_us
    );
    // Both deliver the same data.
    assert_eq!(w1.delivered, w16.delivered);
    // Stop-and-wait spends ~packets × RTT: RTT ≈ 2·(20200 µs + tx).
    let rtt = 2.0 * 20_300.0;
    let expected = 10.0 * rtt;
    let ratio = w1.virtual_end_us as f64 / expected;
    assert!(
        (0.8..1.3).contains(&ratio),
        "completion {} vs ~{expected}",
        w1.virtual_end_us
    );
}

#[test]
fn paced_flows_are_unaffected_by_the_feature() {
    // A paced flow (window: None) must behave exactly as before.
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1);
    let paced = FlowSpec {
        src: 0,
        dst: 3,
        start_us: 0,
        packets: 20,
        bytes: 30_000,
        packet_interval_us: 500,
        window: None,
    };
    let r = run_sequential(&net, &tables, &[paced], &cfg);
    assert_eq!(r.delivered, 20);
    // No ACK traffic: events = 20 injections + 20 × 3 arrival hops.
    assert_eq!(r.total_events(), 20 + 60);
}

#[test]
fn parallel_matches_sequential_with_windows() {
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    // Split the dumbbell at the WAN link; ACKs cross engines.
    let cfg = EmulationConfig::new(vec![0, 0, 1, 1], 2).with_netflow();
    let flows = vec![
        windowed_flow(30, 3),
        FlowSpec {
            src: 3,
            dst: 0,
            start_us: 5_000,
            packets: 25,
            bytes: 37_500,
            packet_interval_us: 50,
            window: None,
        }
        .with_window(5),
    ];
    let seq = run_sequential(&net, &tables, &flows, &cfg);
    let par = run_parallel(&net, &tables, &flows, &cfg);
    assert_eq!(seq.engine_events, par.engine_events);
    assert_eq!(seq.delivered, par.delivered);
    assert_eq!(seq.latency_sum_us, par.latency_sum_us);
    assert_eq!(seq.netflow, par.netflow);
    assert_eq!(seq.delivered, 55);
}

#[test]
fn acks_show_up_in_netflow() {
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1).with_netflow();
    let r = run_sequential(&net, &tables, &[windowed_flow(20, 2)], &cfg);
    // Each router sees 20 data + 20 ack packets of the one flow.
    let total_pkts: u64 = r.netflow.iter().map(|f| f.packets).sum();
    assert_eq!(total_pkts, 2 * (20 + 20));
}

#[test]
fn window_transport_reacts_to_congestion() {
    // Two windowed flows sharing the WAN: ACK-clocking self-limits each
    // flow to roughly its share, so completion stretches vs running alone.
    let net = dumbbell();
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1);
    let alone = run_sequential(&net, &tables, &[windowed_flow(60, 4)], &cfg);
    let mut two = vec![windowed_flow(60, 4)];
    two.push(
        FlowSpec {
            src: 0,
            dst: 3,
            start_us: 0,
            packets: 60,
            bytes: 90_000,
            packet_interval_us: 10,
            window: None,
        }
        .with_window(4),
    );
    let shared = run_sequential(&net, &tables, &two, &cfg);
    assert!(
        shared.virtual_end_us > alone.virtual_end_us,
        "sharing the bottleneck must stretch completion: {} vs {}",
        shared.virtual_end_us,
        alone.virtual_end_us
    );
    assert_eq!(shared.delivered, 120);
}
