//! Property-based end-to-end invariants: for arbitrary generated
//! topologies, workloads, and partitions, the emulator must conserve
//! packets, keep imbalance within its mathematical bounds, and stay
//! deterministic.

use massf_core::engine::run_sequential;
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::brite::{generate, BriteConfig, GrowthModel};
use proptest::prelude::*;

/// Arbitrary small BRITE-like network.
fn arb_network() -> impl Strategy<Value = Network> {
    (6usize..24, 4usize..16, any::<u64>(), prop::bool::ANY).prop_map(
        |(routers, hosts, seed, waxman)| {
            let model = if waxman {
                GrowthModel::Waxman {
                    alpha: 0.2,
                    beta: 0.15,
                }
            } else {
                GrowthModel::BarabasiAlbert { m: 2 }
            };
            generate(&BriteConfig {
                routers,
                hosts,
                model,
                seed,
                ..BriteConfig::paper_brite()
            })
        },
    )
}

/// Arbitrary flow schedule between hosts of `net`.
fn arb_flows(net: &Network, seed: u64, count: usize) -> Vec<FlowSpec> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let hosts = net.hosts();
    (0..count)
        .filter_map(|_| {
            let src = hosts[rng.gen_range(0..hosts.len())];
            let dst = hosts[rng.gen_range(0..hosts.len())];
            (src != dst).then(|| FlowSpec {
                src,
                dst,
                start_us: rng.gen_range(0..2_000_000),
                packets: rng.gen_range(1..40),
                bytes: rng.gen_range(100..60_000),
                packet_interval_us: rng.gen_range(1..2_000),
                window: None,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packets_are_conserved(net in arb_network(), fseed in any::<u64>(), k in 1usize..5) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 25);
        let injected: u64 = flows.iter().map(|f| f.packets).sum();
        let g = net.to_unit_graph();
        prop_assume!(k <= g.nvtxs());
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cfg = EmulationConfig::new(p.part, k);
        let r = run_sequential(&net, &tables, &flows, &cfg);
        prop_assert_eq!(r.delivered + r.dropped, injected, "packets lost or duplicated");
        prop_assert_eq!(r.dropped, 0, "connected network must deliver everything");
    }

    #[test]
    fn event_count_is_partition_invariant(net in arb_network(), fseed in any::<u64>()) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 20);
        let g = net.to_unit_graph();
        let mut totals = Vec::new();
        for k in [1usize, 2, 3] {
            let p = partition_kway(&g, &PartitionConfig::new(k));
            let cfg = EmulationConfig::new(p.part, k);
            let r = run_sequential(&net, &tables, &flows, &cfg);
            totals.push((r.total_events(), r.delivered, r.latency_sum_us));
        }
        prop_assert!(totals.windows(2).all(|w| w[0] == w[1]), "totals differ: {totals:?}");
    }

    #[test]
    fn imbalance_within_bounds(net in arb_network(), fseed in any::<u64>(), k in 2usize..6) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 25);
        let g = net.to_unit_graph();
        prop_assume!(k <= g.nvtxs());
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cfg = EmulationConfig::new(p.part, k);
        let r = run_sequential(&net, &tables, &flows, &cfg);
        let imb = load_imbalance(&r.engine_events);
        // Normalized std-dev of n non-negative numbers is at most sqrt(n-1).
        prop_assert!(imb >= 0.0 && imb <= ((k - 1) as f64).sqrt() + 1e-9, "imb {imb}");
    }

    #[test]
    fn mapping_approaches_accept_any_topology(net in arb_network(), fseed in any::<u64>()) {
        let flows = arb_flows(&net, fseed, 15);
        let study = MappingStudy::new(net, MapperConfig::new(3));
        let hosts = study.net.hosts();
        prop_assume!(hosts.len() >= 4);
        let predicted = massf_core::mapping::place::foreground_prediction(
            &study.net,
            &hosts[..4.min(hosts.len())],
        );
        for a in Approach::ALL {
            let p = study.map(a, &predicted, &flows);
            prop_assert_eq!(p.nparts, 3);
            prop_assert!(p.part_sizes().iter().all(|&s| s > 0), "{}", a.label());
        }
    }

    #[test]
    fn netflow_totals_match_router_work(net in arb_network(), fseed in any::<u64>()) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 20);
        let cfg = EmulationConfig::new(vec![0; net.node_count()], 1).with_netflow();
        let r = run_sequential(&net, &tables, &flows, &cfg);
        // Router events = total events - host events (1 inject + 1 deliver
        // per packet). NetFlow must have recorded exactly the router hops.
        let injected: u64 = flows.iter().map(|f| f.packets).sum();
        let recorded: u64 = r.netflow.iter().map(|f| f.packets).sum();
        prop_assert_eq!(recorded, r.total_events() - 2 * injected);
    }
}
