//! Link-queueing behaviour: the emulator's store-and-forward model must
//! show the textbook congestion signatures — latency grows when offered
//! load exceeds capacity, and sharing a bottleneck is fair in aggregate.

use massf_core::engine::{run_sequential, EmulationConfig};
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::Network;

/// h0 - r - h1 with a deliberately slow middle link.
fn bottleneck(bw_mbps: f64) -> Network {
    let mut net = Network::new();
    let h0 = net.add_host("h0", 0);
    let r0 = net.add_router("r0", 0);
    let r1 = net.add_router("r1", 0);
    let h1 = net.add_host("h1", 0);
    net.add_link(h0, r0, 1000.0, 100);
    net.add_link(r0, r1, bw_mbps, 1_000); // the bottleneck
    net.add_link(r1, h1, 1000.0, 100);
    net
}

fn one_flow(rate_mbps: f64, packets: u64) -> FlowSpec {
    // Packets injected at `rate_mbps` on the wire.
    let interval = ((1500.0 * 8.0) / rate_mbps).round().max(1.0) as u64;
    FlowSpec {
        src: 0,
        dst: 3,
        start_us: 0,
        packets,
        bytes: packets * 1500,
        packet_interval_us: interval,
        window: None,
    }
}

fn mean_latency(net: &Network, flows: &[FlowSpec]) -> f64 {
    let tables = RoutingTables::build(net);
    let cfg = EmulationConfig::new(vec![0; net.node_count()], 1);
    let r = run_sequential(net, &tables, flows, &cfg);
    assert_eq!(r.dropped, 0);
    r.mean_latency_us()
}

#[test]
fn underload_latency_is_flat() {
    // 10 Mbps offered into a 50 Mbps bottleneck: no queueing, latency is
    // propagation + serialization for every packet.
    let net = bottleneck(50.0);
    let lat = mean_latency(&net, &[one_flow(10.0, 100)]);
    // Serialization: 12 µs + 240 µs + 12 µs; propagation: 1200 µs.
    let expected = 1200.0 + 12.0 + 240.0 + 12.0;
    assert!(
        (lat - expected).abs() < 2.0,
        "underloaded latency {lat} vs expected {expected}"
    );
}

#[test]
fn overload_builds_a_queue() {
    // 100 Mbps offered into a 50 Mbps bottleneck: the queue grows linearly,
    // so mean latency far exceeds the unloaded baseline.
    let net = bottleneck(50.0);
    let unloaded = mean_latency(&net, &[one_flow(10.0, 100)]);
    let overloaded = mean_latency(&net, &[one_flow(100.0, 100)]);
    assert!(
        overloaded > 3.0 * unloaded,
        "overload should queue heavily: {overloaded} vs unloaded {unloaded}"
    );
}

#[test]
fn latency_grows_monotonically_with_offered_load() {
    let net = bottleneck(50.0);
    let mut last = 0.0;
    for rate in [10.0, 40.0, 60.0, 100.0, 150.0] {
        let lat = mean_latency(&net, &[one_flow(rate, 80)]);
        assert!(
            lat >= last - 1.0,
            "latency must not drop as load rises: {lat} after {last} at {rate} Mbps"
        );
        last = lat;
    }
}

#[test]
fn two_flows_share_the_bottleneck() {
    // Two 40 Mbps flows into 50 Mbps: each sees more delay than alone.
    let net = bottleneck(50.0);
    let alone = mean_latency(&net, &[one_flow(40.0, 80)]);
    let mut both = vec![one_flow(40.0, 80)];
    both.push(FlowSpec {
        start_us: 7,
        ..one_flow(40.0, 80)
    });
    let shared = mean_latency(&net, &both);
    assert!(
        shared > alone * 1.2,
        "sharing must add queueing delay: {shared} vs alone {alone}"
    );
}

#[test]
fn reverse_direction_is_unaffected() {
    // Full duplex: a flood h0->h1 must not delay h1->h0 traffic.
    let net = bottleneck(50.0);
    let back = FlowSpec {
        src: 3,
        dst: 0,
        start_us: 0,
        packets: 50,
        bytes: 75_000,
        packet_interval_us: 500,
        window: None,
    };
    let quiet = mean_latency(&net, std::slice::from_ref(&back));
    let tables = RoutingTables::build(&net);
    let cfg = EmulationConfig::new(vec![0; 4], 1);
    let r = run_sequential(&net, &tables, &[one_flow(150.0, 200), back.clone()], &cfg);
    // Isolate the reverse flow's latency: total latency minus the flood's.
    let flood = run_sequential(&net, &tables, &[one_flow(150.0, 200)], &cfg);
    let reverse_lat = (r.latency_sum_us - flood.latency_sum_us) as f64 / back.packets as f64;
    assert!(
        (reverse_lat - quiet).abs() < 2.0,
        "duplex violated: reverse latency {reverse_lat} vs quiet {quiet}"
    );
}
