//! The calendar-queue scheduler must be invisible in results: on real
//! scenarios, swapping it against the binary-heap baseline — and swapping
//! the sequential executor against the per-engine-thread one — must leave
//! every simulated quantity bit-identical. Only the scheduler's own
//! internal-cost counters (`engine_sched_resizes`, `engine_reallocs`) may
//! differ between kinds, and even those must be deterministic within a
//! kind across executors.

use massf_core::engine::{run_parallel, run_sequential, EmulationReport, SchedulerKind};
use massf_core::prelude::*;

/// Asserts every simulated (scheduler-independent) field matches.
fn assert_simulated_equal(a: &EmulationReport, b: &EmulationReport, what: &str) {
    assert_eq!(a.engine_events, b.engine_events, "{what}");
    assert_eq!(a.engine_stalls, b.engine_stalls, "{what}");
    assert_eq!(a.engine_remote_sent, b.engine_remote_sent, "{what}");
    assert_eq!(a.engine_remote_recv, b.engine_remote_recv, "{what}");
    assert_eq!(a.engine_queue_peak, b.engine_queue_peak, "{what}");
    assert_eq!(a.delivered, b.delivered, "{what}");
    assert_eq!(a.dropped, b.dropped, "{what}");
    assert_eq!(a.latency_sum_us, b.latency_sum_us, "{what}");
    assert_eq!(a.remote_messages, b.remote_messages, "{what}");
    assert_eq!(a.rounds, b.rounds, "{what}");
    assert_eq!(a.virtual_end_us, b.virtual_end_us, "{what}");
    assert_eq!(a.window_series, b.window_series, "{what}");
    assert_eq!(a.stall_series, b.stall_series, "{what}");
    assert_eq!(a.recv_series, b.recv_series, "{what}");
    assert_eq!(a.netflow, b.netflow, "{what}");
}

fn check(topo: Topology, wl: Workload) {
    let built = Scenario::new(topo, wl).with_scale(0.08).build();
    let partition = built
        .study
        .map(Approach::Top, &built.predicted, &built.flows);
    let base = EmulationConfig::new(partition.part.clone(), partition.nparts).with_netflow();

    let heap_cfg = base.clone().with_scheduler(SchedulerKind::Heap);
    let cal_cfg = base.with_scheduler(SchedulerKind::Calendar);
    let net = &built.study.net;
    let tables = &built.study.tables;

    let heap_seq = run_sequential(net, tables, &built.flows, &heap_cfg);
    let cal_seq = run_sequential(net, tables, &built.flows, &cal_cfg);
    let heap_par = run_parallel(net, tables, &built.flows, &heap_cfg);
    let cal_par = run_parallel(net, tables, &built.flows, &cal_cfg);

    let label = format!("{topo:?}/{wl:?}");
    assert_simulated_equal(
        &heap_seq,
        &cal_seq,
        &format!("{label}: heap vs calendar (seq)"),
    );
    assert_simulated_equal(&heap_seq, &heap_par, &format!("{label}: seq vs par (heap)"));
    assert_simulated_equal(
        &cal_seq,
        &cal_par,
        &format!("{label}: seq vs par (calendar)"),
    );

    // The scheduler's internal-cost counters depend on the kind but never
    // on the executor.
    assert_eq!(heap_seq.engine_sched_resizes, heap_par.engine_sched_resizes);
    assert_eq!(cal_seq.engine_sched_resizes, cal_par.engine_sched_resizes);
    assert_eq!(heap_seq.engine_reallocs, heap_par.engine_reallocs);
    assert_eq!(cal_seq.engine_reallocs, cal_par.engine_reallocs);
    // The heap never rebuilds a bucket array.
    assert!(heap_seq.engine_sched_resizes.iter().all(|&r| r == 0));
}

#[test]
fn campus_scalapack() {
    check(Topology::Campus, Workload::Scalapack);
}

#[test]
fn teragrid_gridnpb() {
    check(Topology::TeraGrid, Workload::GridNpb);
}

#[test]
fn brite_scalapack() {
    check(Topology::Brite, Workload::Scalapack);
}
