//! Golden-file tests for the `--report` run report (the `massf-obs`
//! layer driven through the CLI).
//!
//! The goldens in `tests/golden/campus_run_report.{json,txt}` hold the
//! deterministic prefix of the report for the shipped campus + CBR
//! scenario: everything above the `timing` key (JSON) or the
//! `timing (wall-clock…)` header (human text). Wall-clock spans live
//! below that boundary by construction, so the masked prefix must match
//! byte for byte across runs *and* across `--threads` settings.

use massf_repro::cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Runs the campus CBR scenario with `--report` (plus `extra` CLI flags)
/// and returns the JSON text.
fn campus_report_json_with(threads: &str, extra: &[&str]) -> String {
    let path = std::env::temp_dir().join(format!(
        "massf_run_report_{}_t{threads}_{}.json",
        std::process::id(),
        extra.join("_").replace("--", "")
    ));
    let path_str = path.to_str().unwrap();
    let mut all = vec![
        "run",
        "examples/scenarios/campus.dml",
        "--engines",
        "3",
        "--traffic",
        "examples/scenarios/cbr.txt",
        "--duration-s",
        "2",
        "--threads",
        threads,
        "--report",
        path_str,
    ];
    all.extend_from_slice(extra);
    cli::run(&args(&all)).expect("campus run must succeed");
    let json = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    json
}

/// Runs the campus CBR scenario with `--report` and returns the JSON text.
fn campus_report_json(threads: &str) -> String {
    campus_report_json_with(threads, &[])
}

/// Truncates a JSON report at the `timing` key — the non-deterministic
/// remainder of the document.
fn mask_json(json: &str) -> &str {
    let at = json
        .find("  \"timing\": {")
        .expect("report has a timing key");
    &json[..at]
}

/// Truncates a human rendering at the wall-clock section header.
fn mask_human(text: &str) -> &str {
    let at = text
        .find("timing (wall-clock")
        .expect("rendering has a timing section");
    &text[..at]
}

/// Compares `actual` against the golden at `path`, rewriting the golden
/// instead when `MASSF_BLESS=1` is set.
fn assert_golden(actual: &str, path: &str) {
    if std::env::var_os("MASSF_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    assert_eq!(actual, golden, "output drifted from {path}");
}

#[test]
fn campus_json_report_matches_golden() {
    let json = campus_report_json("1");
    let golden = include_str!("golden/campus_run_report.json");
    assert_eq!(
        mask_json(&json),
        golden,
        "deterministic report prefix drifted from tests/golden/campus_run_report.json"
    );
}

#[test]
fn campus_human_report_matches_golden() {
    let json = campus_report_json("1");
    let path = std::env::temp_dir().join(format!("massf_run_report_{}_h.json", std::process::id()));
    std::fs::write(&path, &json).unwrap();
    let text = cli::run(&args(&["report", path.to_str().unwrap()])).expect("report renders");
    let _ = std::fs::remove_file(&path);
    let golden = include_str!("golden/campus_run_report.txt");
    assert_eq!(
        mask_human(&text),
        golden,
        "deterministic rendering prefix drifted from tests/golden/campus_run_report.txt"
    );
}

#[test]
fn masked_report_is_byte_identical_across_threads() {
    let base = campus_report_json("1");
    for threads in ["2", "4"] {
        let other = campus_report_json(threads);
        assert_eq!(
            mask_json(&base),
            mask_json(&other),
            "simulated quantities vary at --threads {threads}"
        );
    }
}

#[test]
fn masked_report_is_byte_identical_across_routing_kind_and_threads() {
    // The routing representation may only change the `routing.*` size
    // statistics — every simulated quantity (partition, emulation,
    // counters, gauges) must be byte-identical because routing answers
    // are. And each representation must itself be thread-invariant.
    let strip_routing_lines = |masked: &str| -> String {
        masked
            .lines()
            .filter(|l| !l.contains("\"routing."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let compressed = campus_report_json_with("1", &["--routing", "compressed"]);
    let dense = campus_report_json_with("1", &["--routing", "dense"]);
    assert_eq!(
        strip_routing_lines(mask_json(&compressed)),
        strip_routing_lines(mask_json(&dense)),
        "simulated quantities vary with --routing"
    );
    assert_ne!(
        mask_json(&compressed),
        mask_json(&dense),
        "routing.* size stats should differ between representations"
    );
    for threads in ["2", "4"] {
        let other = campus_report_json_with(threads, &["--routing", "dense"]);
        assert_eq!(
            mask_json(&dense),
            mask_json(&other),
            "dense report varies at --threads {threads}"
        );
    }
    // The default is the compressed representation.
    assert_eq!(mask_json(&campus_report_json("1")), mask_json(&compressed));
}

#[test]
fn masked_report_is_byte_identical_across_lazy_and_threads() {
    // Lazy on-demand tables answer every query bit-identically, so the
    // simulated quantities must match the eager representations exactly;
    // only the self-describing `routing.*` lines (size stats for eager,
    // demand/residency stats for lazy) may differ. The lazy demand
    // counters themselves are thread-invariant: the demanded row set is
    // a function of the flow schedule, not of engine scheduling.
    let strip_routing_lines = |masked: &str| -> String {
        masked
            .lines()
            .filter(|l| !l.contains("\"routing."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let lazy = campus_report_json_with("1", &["--routing", "lazy"]);
    let compressed = campus_report_json_with("1", &["--routing", "compressed"]);
    assert_eq!(
        strip_routing_lines(mask_json(&lazy)),
        strip_routing_lines(mask_json(&compressed)),
        "simulated quantities vary between lazy and compressed routing"
    );
    for threads in ["2", "4"] {
        let other = campus_report_json_with(threads, &["--routing", "lazy"]);
        assert_eq!(
            mask_json(&lazy),
            mask_json(&other),
            "lazy report varies at --threads {threads}"
        );
    }
}

#[test]
fn lazy_report_carries_demand_and_slice_counters() {
    let json = campus_report_json_with("1", &["--routing", "lazy"]);
    for key in [
        "\"routing.lazy_demand_hits\"",
        "\"routing.lazy_demand_misses\"",
        "\"routing.lazy_lookups\"",
        "\"routing.lazy_resident_bytes\"",
        "\"routing.lazy_rows_materialized\"",
        "\"routing.lazy_rows_pending\"",
        "\"routing.lazy_slice0_resident_bytes\"",
        "\"routing.lazy_slice0_rows\"",
    ] {
        assert!(json.contains(key), "lazy report missing {key}");
    }
    // Eager runs must not grow demand lines.
    let eager = campus_report_json_with("1", &["--routing", "compressed"]);
    assert!(
        !eager.contains("\"routing.lazy_"),
        "eager report has lazy keys"
    );
}

#[test]
fn report_carries_routing_size_counters() {
    let json = campus_report_json("1");
    for key in [
        "\"routing.bytes_dense_baseline\"",
        "\"routing.bytes_measured\"",
        "\"routing.bytes_predicted\"",
        "\"routing.rows_leaf\"",
        "\"routing.runs_total\"",
        "\"routing.compression_x\"",
        "\"routing.runs_mean_per_row\"",
    ] {
        assert!(json.contains(key), "report missing {key}");
    }
}

const EPOCH_FLAGS: &[&str] = &["--epochs", "4", "--rebalance", "incremental"];

#[test]
fn campus_epoch_report_matches_golden() {
    // The online run: 4 epochs, incremental rebalancing. The `rebalance`
    // block (per-epoch measured loads, drift values, boundary decisions)
    // sits between `emulation` and `lint`, above the timing mask.
    // Regenerate with `MASSF_BLESS=1 cargo test --test run_report`.
    let json = campus_report_json_with("1", EPOCH_FLAGS);
    assert!(json.contains("\"rebalance\": {"), "{json}");
    assert_golden(
        mask_json(&json),
        "tests/golden/campus_run_report_epochs.json",
    );

    let path = std::env::temp_dir().join(format!("massf_run_report_{}_e.json", std::process::id()));
    std::fs::write(&path, &json).unwrap();
    let text = cli::run(&args(&["report", path.to_str().unwrap()])).expect("report renders");
    let _ = std::fs::remove_file(&path);
    assert!(text.contains("rebalance (incremental)"), "{text}");
    assert_golden(
        mask_human(&text),
        "tests/golden/campus_run_report_epochs.txt",
    );
}

#[test]
fn epoch_report_is_byte_identical_across_threads() {
    // Epoch loads, drift values, and boundary decisions are functions of
    // virtual time, never of scheduling, so the whole deterministic
    // prefix — rebalance block included — must not move with --threads.
    let base = campus_report_json_with("1", EPOCH_FLAGS);
    for threads in ["2", "4"] {
        let other = campus_report_json_with(threads, EPOCH_FLAGS);
        assert_eq!(
            mask_json(&base),
            mask_json(&other),
            "epoch block varies at --threads {threads}"
        );
    }
}

#[test]
fn timing_is_present_and_last() {
    let json = campus_report_json("1");
    let at = json.find("  \"timing\": {").unwrap();
    // Nothing but the timing object and the closing brace may follow.
    let tail = &json[at..];
    assert!(tail.trim_end().ends_with('}'), "{tail}");
    assert!(
        !tail.contains("\"emulation\""),
        "emulation data leaked below the timing boundary"
    );
}
