//! Replay (isolated network emulation, §4.1.1) invariants: compression
//! removes idle time but preserves the traffic itself and its causality.

use massf_core::engine::trace::compress_for_replay;
use massf_core::prelude::*;
use massf_core::traffic::flow::{horizon_us, total_packets};
use std::collections::HashMap;

fn built() -> BuiltScenario {
    Scenario::new(Topology::Campus, Workload::GridNpb)
        .with_scale(0.2)
        .build()
}

#[test]
fn replay_preserves_packet_population() {
    let b = built();
    let compressed = compress_for_replay(&b.flows);
    assert_eq!(b.flows.len(), compressed.len());
    assert_eq!(total_packets(&b.flows), total_packets(&compressed));
    let bytes = |fs: &[FlowSpec]| fs.iter().map(|f| f.bytes).sum::<u64>();
    assert_eq!(bytes(&b.flows), bytes(&compressed));
}

#[test]
fn replay_compresses_the_horizon() {
    // GridNPB has long compute gaps; replay must squeeze them out.
    let b = built();
    let compressed = compress_for_replay(&b.flows);
    let before = horizon_us(&b.flows);
    let after = horizon_us(&compressed);
    assert!(
        after < before / 2,
        "expected at least 2x horizon compression: {before} -> {after}"
    );
}

#[test]
fn replay_keeps_per_source_order() {
    let b = built();
    let compressed = compress_for_replay(&b.flows);
    // For each source host, the original start order must be preserved.
    let mut orig_order: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut idx: Vec<usize> = (0..b.flows.len()).collect();
    idx.sort_by_key(|&i| (b.flows[i].start_us, b.flows[i].src, b.flows[i].dst));
    for &i in &idx {
        orig_order.entry(b.flows[i].src).or_default().push(i);
    }
    for (src, order) in orig_order {
        let mut last_start = 0u64;
        for &i in &order {
            assert!(
                compressed[i].start_us >= last_start,
                "source {src}: flow {i} reordered"
            );
            last_start = compressed[i].start_us;
        }
    }
}

#[test]
fn replay_delivers_the_same_packets_faster() {
    let b = built();
    let partition = b.study.map(Approach::Top, &b.predicted, &b.flows);
    let live = b
        .study
        .evaluate(&partition, &b.flows, CostModel::live_application());
    let replay = b.study.replay(&partition, &b.flows);
    assert_eq!(live.delivered, replay.delivered);
    assert!(
        replay.emulation_time_s() < live.emulation_time_s(),
        "replay {:.2}s !< live {:.2}s",
        replay.emulation_time_s(),
        live.emulation_time_s()
    );
}

#[test]
fn replay_ranks_mappings_like_live_imbalance() {
    // Figures 9/10's purpose: replay is a *direct* measurement of mapping
    // quality. The worst live mapping must not become the best in replay.
    let b = built();
    let mut times = Vec::new();
    for a in Approach::ALL {
        let p = b.study.map(a, &b.predicted, &b.flows);
        let live = b
            .study
            .evaluate(&p, &b.flows, CostModel::live_application());
        let rep = b.study.replay(&p, &b.flows);
        times.push((
            a,
            massf_metrics::load_imbalance(&live.engine_events),
            rep.emulation_time_s(),
        ));
    }
    let worst_live = times
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("non-empty");
    let best_replay = times
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .expect("non-empty");
    assert_ne!(
        worst_live.0, best_replay.0,
        "the most imbalanced mapping should not replay fastest: {times:?}"
    );
}
