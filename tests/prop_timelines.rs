//! Property-based consistency checks for the observability series the run
//! report is built from: on arbitrary networks, flows, and partitions, the
//! per-engine virtual-time timelines must sum to the final counters, the
//! cross-engine send/receive ledger must balance, and the parallel
//! executor must produce exactly the sequential executor's series.

use massf_core::engine::{run_parallel, run_sequential};
use massf_core::prelude::*;
use massf_core::routing::RoutingTables;
use massf_core::topology::brite::{generate, BriteConfig, GrowthModel};
use proptest::prelude::*;

/// Arbitrary small BRITE-like network.
fn arb_network() -> impl Strategy<Value = Network> {
    (6usize..20, 4usize..14, any::<u64>(), prop::bool::ANY).prop_map(
        |(routers, hosts, seed, waxman)| {
            let model = if waxman {
                GrowthModel::Waxman {
                    alpha: 0.2,
                    beta: 0.15,
                }
            } else {
                GrowthModel::BarabasiAlbert { m: 2 }
            };
            generate(&BriteConfig {
                routers,
                hosts,
                model,
                seed,
                ..BriteConfig::paper_brite()
            })
        },
    )
}

/// Arbitrary flow schedule between hosts of `net`.
fn arb_flows(net: &Network, seed: u64, count: usize) -> Vec<FlowSpec> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let hosts = net.hosts();
    (0..count)
        .filter_map(|_| {
            let src = hosts[rng.gen_range(0..hosts.len())];
            let dst = hosts[rng.gen_range(0..hosts.len())];
            (src != dst).then(|| FlowSpec {
                src,
                dst,
                start_us: rng.gen_range(0..2_000_000),
                packets: rng.gen_range(1..30),
                bytes: rng.gen_range(100..60_000),
                packet_interval_us: rng.gen_range(1..2_000),
                window: None,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn timeline_sums_equal_counter_totals(
        net in arb_network(),
        fseed in any::<u64>(),
        k in 1usize..5,
    ) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 20);
        prop_assume!(!flows.is_empty());
        let g = net.to_unit_graph();
        prop_assume!(k <= g.nvtxs());
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cfg = EmulationConfig::new(p.part, k);
        let r = run_sequential(&net, &tables, &flows, &cfg);

        for e in 0..r.nengines {
            prop_assert_eq!(
                r.window_series[e].iter().sum::<u64>(),
                r.engine_events[e],
                "engine {} event timeline does not sum to its counter", e
            );
            prop_assert_eq!(
                r.stall_series[e].iter().sum::<u64>(),
                r.engine_stalls[e],
                "engine {} stall timeline does not sum to its counter", e
            );
            prop_assert_eq!(
                r.recv_series[e].iter().sum::<u64>(),
                r.engine_remote_recv[e],
                "engine {} recv timeline does not sum to its counter", e
            );
        }
        // Every cross-engine shipment is sent exactly once and received
        // exactly once.
        let sent: u64 = r.engine_remote_sent.iter().sum();
        let recv: u64 = r.engine_remote_recv.iter().sum();
        prop_assert_eq!(sent, recv, "send/receive ledger out of balance");
        prop_assert_eq!(sent, r.remote_messages);
        // All timeline rows are aligned to the same bucket count.
        for series in [&r.window_series, &r.stall_series, &r.recv_series] {
            for row in series.iter() {
                prop_assert_eq!(row.len(), r.window_series[0].len());
            }
        }
    }

    #[test]
    fn parallel_executor_reproduces_sequential_series(
        net in arb_network(),
        fseed in any::<u64>(),
        k in 2usize..5,
    ) {
        let tables = RoutingTables::build(&net);
        let flows = arb_flows(&net, fseed, 15);
        prop_assume!(!flows.is_empty());
        let g = net.to_unit_graph();
        prop_assume!(k <= g.nvtxs());
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cfg = EmulationConfig::new(p.part, k);
        let seq = run_sequential(&net, &tables, &flows, &cfg);
        let par = run_parallel(&net, &tables, &flows, &cfg);
        prop_assert_eq!(&seq.engine_events, &par.engine_events);
        prop_assert_eq!(&seq.engine_stalls, &par.engine_stalls);
        prop_assert_eq!(&seq.engine_remote_sent, &par.engine_remote_sent);
        prop_assert_eq!(&seq.engine_remote_recv, &par.engine_remote_recv);
        prop_assert_eq!(&seq.window_series, &par.window_series);
        prop_assert_eq!(&seq.stall_series, &par.stall_series);
        prop_assert_eq!(&seq.recv_series, &par.recv_series);
    }
}
