//! End-to-end reproduction checks: the paper's qualitative results must
//! hold on a scaled-down version of the §4 experiments.

use massf_core::prelude::*;

fn results_for(topo: Topology, wl: Workload, scale: f64) -> Vec<ApproachResult> {
    Scenario::new(topo, wl)
        .with_scale(scale)
        .without_background()
        .build()
        .run_all()
}

#[test]
fn campus_scalapack_ordering_holds() {
    let r = results_for(Topology::Campus, Workload::Scalapack, 0.15);
    let (top, place, profile) = (&r[0], &r[1], &r[2]);
    // The headline shape: traffic-aware mappings beat topology-only.
    assert!(
        place.load_imbalance < top.load_imbalance,
        "PLACE {:.3} !< TOP {:.3}",
        place.load_imbalance,
        top.load_imbalance
    );
    assert!(
        profile.load_imbalance < top.load_imbalance,
        "PROFILE {:.3} !< TOP {:.3}",
        profile.load_imbalance,
        top.load_imbalance
    );
}

#[test]
fn campus_gridnpb_profile_wins() {
    // GridNPB's irregular traffic is where PROFILE must beat both others.
    // Run the paper's actual configuration — with moderate background
    // traffic (§4.2.1), which only PROFILE measures precisely.
    let r = Scenario::new(Topology::Campus, Workload::GridNpb)
        .with_scale(0.5)
        .build()
        .run_all();
    let (top, place, profile) = (&r[0], &r[1], &r[2]);
    assert!(profile.load_imbalance < top.load_imbalance);
    assert!(
        profile.load_imbalance <= place.load_imbalance * 1.05 + 0.01,
        "PROFILE {:.3} should not lose to PLACE {:.3} on GridNPB",
        profile.load_imbalance,
        place.load_imbalance
    );
}

#[test]
fn profile_improvement_is_substantial() {
    // The paper quotes 50-66% imbalance improvement; demand at least 30%
    // at test scale to stay robust.
    let r = results_for(Topology::Campus, Workload::Scalapack, 0.15);
    let gain = improvement_pct(r[0].load_imbalance, r[2].load_imbalance);
    assert!(
        gain >= 30.0,
        "PROFILE only improved imbalance by {gain:.0}%"
    );
}

#[test]
fn emulation_work_is_mapping_invariant() {
    // Mapping changes *where* packets are processed, never *what* happens:
    // delivered packets, total events, and latency sums must match across
    // approaches.
    let r = results_for(Topology::Campus, Workload::Scalapack, 0.1);
    for w in r.windows(2) {
        assert_eq!(w[0].report.delivered, w[1].report.delivered);
        assert_eq!(w[0].report.total_events(), w[1].report.total_events());
        assert_eq!(w[0].report.latency_sum_us, w[1].report.latency_sum_us);
        assert_eq!(w[0].report.dropped, 0);
    }
}

#[test]
fn imbalance_grows_with_engine_count() {
    // §4.2.1: "The normalized load imbalance increases when the number of
    // simulation engine nodes is increased." Fixed network-wide traffic
    // (HTTP across all hosts), TOP-style partition, 2 vs 16 engines: finer
    // partitions leave less room to average out per-engine load.
    let net = Topology::Brite.build();
    let hosts = net.hosts();
    let http = massf_core::traffic::http::HttpConfig {
        server_count: 40,
        clients_per_server: 3,
        think_time_s: 0.4,
        ..Default::default()
    };
    let flows = massf_core::traffic::http::generate(&hosts, &http, 4_000_000);
    let study = MappingStudy::new(net, MapperConfig::new(2));
    let g = study.net.to_unit_graph();
    let mut imbalances = Vec::new();
    for k in [2usize, 16] {
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let report = study.evaluate(&p, &flows, CostModel::default());
        imbalances.push(load_imbalance(&report.engine_events));
    }
    assert!(
        imbalances[1] > imbalances[0],
        "imbalance at 16 engines ({:.3}) should exceed 2 engines ({:.3})",
        imbalances[1],
        imbalances[0]
    );
}

#[test]
fn scaleup_table2_shape() {
    // Table 2's ordering on the 200-router network (scaled down traffic).
    let built = Scenario::new(Topology::BriteScaleup, Workload::Scalapack)
        .with_scale(0.1)
        .without_background()
        .build();
    let r = built.run_all();
    assert!(
        r[2].load_imbalance < r[0].load_imbalance,
        "PROFILE must beat TOP at scale"
    );
    assert!(
        r[1].load_imbalance < r[0].load_imbalance,
        "PLACE must beat TOP at scale"
    );
}

#[test]
fn experiments_are_deterministic() {
    let a = results_for(Topology::Campus, Workload::GridNpb, 0.1);
    let b = results_for(Topology::Campus, Workload::GridNpb, 0.1);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.partitioning, y.partitioning);
        assert_eq!(x.report.engine_events, y.report.engine_events);
        assert!((x.emulation_time_s - y.emulation_time_s).abs() < 1e-9);
    }
}

#[test]
fn emulation_runs_on_hierarchical_routing() {
    // Two-level AS routing (hot-potato via gateways) must drive the
    // emulator exactly like flat SPF tables do.
    use massf_core::engine::{run_sequential, EmulationConfig};
    use massf_core::routing::hierarchy::build_hierarchical;
    let net = Topology::TeraGrid.build();
    let hier = build_hierarchical(&net);
    let hosts = net.hosts();
    let flows: Vec<FlowSpec> = (0..10)
        .map(|i| FlowSpec {
            src: hosts[i],
            dst: hosts[(i + 60) % hosts.len()],
            start_us: i as u64 * 100,
            packets: 12,
            bytes: 18_000,
            packet_interval_us: 90,
            window: None,
        })
        .collect();
    let cfg = EmulationConfig::new(vec![0; net.node_count()], 1);
    let r = run_sequential(&net, &hier, &flows, &cfg);
    assert_eq!(r.delivered, 120);
    assert_eq!(r.dropped, 0);
}
